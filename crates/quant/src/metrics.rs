//! Quantization error metrics used by the accuracy experiments.

use serde::{Deserialize, Serialize};

/// Reconstruction error statistics between an original tensor and its
/// quantize-dequantize reconstruction.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct QuantError {
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Signal-to-quantization-noise ratio in dB (higher is better).
    pub sqnr_db: f64,
    /// Cosine similarity between original and reconstruction.
    pub cosine: f64,
}

impl QuantError {
    /// Measures error statistics between `original` and `reconstructed`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn measure(original: &[f32], reconstructed: &[f32]) -> Self {
        assert_eq!(original.len(), reconstructed.len());
        assert!(!original.is_empty());
        let n = original.len() as f64;
        let mut se = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut sig = 0.0f64;
        let mut dot = 0.0f64;
        let mut norm_r = 0.0f64;
        for (&a, &b) in original.iter().zip(reconstructed) {
            let (a, b) = (a as f64, b as f64);
            let d = a - b;
            se += d * d;
            max_abs = max_abs.max(d.abs());
            sig += a * a;
            dot += a * b;
            norm_r += b * b;
        }
        let mse = se / n;
        let sqnr_db = if se > 0.0 {
            10.0 * (sig / se).log10()
        } else {
            f64::INFINITY
        };
        let cosine = if sig > 0.0 && norm_r > 0.0 {
            dot / (sig.sqrt() * norm_r.sqrt())
        } else {
            1.0
        };
        QuantError {
            mse,
            rmse: mse.sqrt(),
            max_abs,
            sqnr_db,
            cosine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction() {
        let x = vec![1.0f32, -2.0, 3.0];
        let e = QuantError::measure(&x, &x);
        assert_eq!(e.mse, 0.0);
        assert!(e.sqnr_db.is_infinite());
        assert!((e.cosine - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_error_values() {
        let x = vec![1.0f32, 1.0, 1.0, 1.0];
        let y = vec![1.5f32, 0.5, 1.0, 1.0];
        let e = QuantError::measure(&x, &y);
        assert!((e.mse - 0.125).abs() < 1e-12);
        assert!((e.max_abs - 0.5).abs() < 1e-12);
        // SQNR = 10 log10(4 / 0.5) = ~9.03 dB.
        assert!((e.sqnr_db - 9.0309).abs() < 1e-3);
    }

    #[test]
    fn sqnr_decreases_with_noise() {
        let x: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
        let small: Vec<f32> = x.iter().map(|v| v + 0.01).collect();
        let large: Vec<f32> = x.iter().map(|v| v + 0.1).collect();
        let e_small = QuantError::measure(&x, &small);
        let e_large = QuantError::measure(&x, &large);
        assert!(e_small.sqnr_db > e_large.sqnr_db);
    }
}
