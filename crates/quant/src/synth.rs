//! Synthetic LLM-like weight and activation generators.
//!
//! Real checkpoints are unavailable in this reproduction (see DESIGN.md);
//! the accuracy-bearing quantization experiments instead use weights whose
//! *distributional* properties match what the quantization literature
//! reports for transformer weights: approximately zero-mean Gaussian bulk
//! (the paper's own assumption in Section 5.1.1) plus a small fraction of
//! high-magnitude outlier weights concentrated in a few channels
//! ("systematic outliers", Kovaleva et al. 2024 — the paper's reference
//! 27). The outliers are what make coarse per-channel quantization
//! collapse in Table 1, so generating them faithfully matters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a standard normal via Box-Muller (keeps `rand` at its base
/// feature set — no `rand_distr` dependency).
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Generates a row-major `[k, n]` weight matrix: `N(0, std^2)` bulk with a
/// fraction `outlier_frac` of elements drawn at 8x the base std, clustered
/// into hot input channels (every 16th channel hosts outliers), mimicking
/// the systematic-outlier structure of transformer weights.
pub fn gaussian_matrix(k: usize, n: usize, seed: u64, std: f32, outlier_frac: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(k * n);
    for ki in 0..k {
        let hot_channel = ki % 16 == 0;
        for _ in 0..n {
            let mut v = normal(&mut rng) * std;
            if hot_channel && rng.gen::<f32>() < outlier_frac * 16.0 {
                v = normal(&mut rng) * std * 8.0;
            }
            out.push(v);
        }
    }
    out
}

/// Per-input-channel activation absolute maxima for AWQ calibration:
/// log-normal-ish magnitudes with a few hot channels, which is the shape
/// SmoothQuant/AWQ report for transformer activations.
pub fn activation_amax(k: usize, seed: u64, hot_scale: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xd134_2543_de82_ef95));
    (0..k)
        .map(|ki| {
            let base = (normal(&mut rng) * 0.5).exp();
            if ki % 24 == 0 {
                base * hot_scale
            } else {
                base
            }
        })
        .collect()
}

/// Deterministic uniform values in `[-range, range]`, for activation test
/// vectors where a flat distribution is preferable.
pub fn uniform_vec(len: usize, seed: u64, range: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5851_f42d_4c95_7f2d));
    (0..len).map(|_| rng.gen_range(-range..=range)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = gaussian_matrix(32, 32, 7, 1.0, 0.01);
        let b = gaussian_matrix(32, 32, 7, 1.0, 0.01);
        assert_eq!(a, b);
        let c = gaussian_matrix(32, 32, 8, 1.0, 0.01);
        assert_ne!(a, c);
    }

    #[test]
    fn bulk_statistics_are_standard_normal() {
        let w = gaussian_matrix(128, 128, 3, 1.0, 0.0);
        let n = w.len() as f64;
        let mean: f64 = w.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 = w.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn outliers_widen_the_tails() {
        let clean = gaussian_matrix(256, 64, 3, 1.0, 0.0);
        let dirty = gaussian_matrix(256, 64, 3, 1.0, 0.02);
        let amax = |v: &[f32]| v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(amax(&dirty) > amax(&clean) * 1.5);
    }

    #[test]
    fn activation_amax_has_hot_channels() {
        let act = activation_amax(96, 1, 10.0);
        // Channel 0 is hot; median channel is not.
        let mut sorted = act.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[48];
        assert!(act[0] > median * 3.0);
    }

    #[test]
    fn uniform_respects_range() {
        let v = uniform_vec(1000, 9, 2.5);
        assert!(v.iter().all(|&x| (-2.5..=2.5).contains(&x)));
        assert!(v.iter().any(|&x| x > 1.0));
        assert!(v.iter().any(|&x| x < -1.0));
    }
}
