//! Q4_0 and Q8_0 quantization blocks (llama.cpp-compatible semantics).
//!
//! A group of 32 weights shares one FP16 scale. Q4_0 stores 4-bit offsets in
//! `[0, 15]` with an implicit bias of 8 (so dequantized values span scale x
//! `[-8, 7]` — exactly the 16-entry table the paper's `vlut16` dequantization
//! uses, Figure 9); Q8_0 stores signed 8-bit values. These are the two
//! schemes the paper deploys (Q4_0 everywhere, Q8_0 for the accuracy-critical
//! FFN down projections, Section 7.1).

use hexsim::f16::F16;

/// Weights per quantization group.
pub const GROUP_SIZE: usize = 32;

/// Serialized size of one [`BlockQ4_0`]: 2-byte scale + 16 bytes of nibbles.
pub const Q4_0_BLOCK_BYTES: usize = 18;

/// Serialized size of one [`BlockQ8_0`]: 2-byte scale + 32 signed bytes.
pub const Q8_0_BLOCK_BYTES: usize = 34;

/// One Q4_0 group: 32 weights as 4-bit codes plus an FP16 scale.
///
/// Nibble packing: byte `i` stores element `2i` in its low nibble and
/// element `2i + 1` in its high nibble.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockQ4_0 {
    /// Group scale (`d` in llama.cpp).
    pub scale: F16,
    /// 32 4-bit codes, two per byte.
    pub quants: [u8; GROUP_SIZE / 2],
}

impl BlockQ4_0 {
    /// Quantizes 32 values with llama.cpp Q4_0 semantics: the maximum-
    /// magnitude element maps to code 0 (value -8 x scale), preserving its
    /// sign through a negative scale when the extreme element is positive.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not exactly 32 elements.
    pub fn quantize(values: &[f32]) -> Self {
        assert_eq!(values.len(), GROUP_SIZE);
        let mut amax = 0.0f32;
        let mut max = 0.0f32;
        for &v in values {
            if v.abs() > amax {
                amax = v.abs();
                max = v;
            }
        }
        let d = max / -8.0;
        let id = if d != 0.0 { 1.0 / d } else { 0.0 };
        let scale = F16::from_f32(d);
        let mut quants = [0u8; GROUP_SIZE / 2];
        for i in 0..GROUP_SIZE / 2 {
            let q0 = ((values[2 * i] * id + 8.5) as i32).clamp(0, 15) as u8;
            let q1 = ((values[2 * i + 1] * id + 8.5) as i32).clamp(0, 15) as u8;
            quants[i] = q0 | (q1 << 4);
        }
        BlockQ4_0 { scale, quants }
    }

    /// Extracts the 4-bit code of element `i` (0..32).
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        let byte = self.quants[i / 2];
        if i.is_multiple_of(2) {
            byte & 0x0f
        } else {
            byte >> 4
        }
    }

    /// Dequantizes all 32 elements to f32.
    pub fn dequantize(&self) -> [f32; GROUP_SIZE] {
        let d = self.scale.to_f32();
        let mut out = [0.0f32; GROUP_SIZE];
        for (i, o) in out.iter_mut().enumerate() {
            *o = (self.code(i) as i32 - 8) as f32 * d;
        }
        out
    }

    /// Dequantizes element `i` as FP16 exactly the way the NPU kernel does:
    /// `F16(code - 8) * F16(scale)` with binary16 rounding at each step.
    pub fn dequantize_f16(&self, i: usize) -> F16 {
        let base = F16::from_f32((self.code(i) as i32 - 8) as f32);
        base.mul(self.scale)
    }

    /// Serializes to the 18-byte AoS wire format (scale, then nibbles).
    pub fn to_bytes(&self) -> [u8; Q4_0_BLOCK_BYTES] {
        let mut out = [0u8; Q4_0_BLOCK_BYTES];
        out[0..2].copy_from_slice(&self.scale.0.to_le_bytes());
        out[2..].copy_from_slice(&self.quants);
        out
    }

    /// Deserializes from the 18-byte wire format.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than 18 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let scale = F16(u16::from_le_bytes([bytes[0], bytes[1]]));
        let mut quants = [0u8; GROUP_SIZE / 2];
        quants.copy_from_slice(&bytes[2..Q4_0_BLOCK_BYTES]);
        BlockQ4_0 { scale, quants }
    }
}

/// One Q8_0 group: 32 weights as signed bytes plus an FP16 scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockQ8_0 {
    /// Group scale.
    pub scale: F16,
    /// 32 signed 8-bit codes.
    pub quants: [i8; GROUP_SIZE],
}

impl BlockQ8_0 {
    /// Quantizes 32 values: symmetric, `scale = amax / 127`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not exactly 32 elements.
    pub fn quantize(values: &[f32]) -> Self {
        assert_eq!(values.len(), GROUP_SIZE);
        let amax = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let d = amax / 127.0;
        let id = if d != 0.0 { 1.0 / d } else { 0.0 };
        let scale = F16::from_f32(d);
        let mut quants = [0i8; GROUP_SIZE];
        for (i, q) in quants.iter_mut().enumerate() {
            *q = (values[i] * id).round().clamp(-127.0, 127.0) as i8;
        }
        BlockQ8_0 { scale, quants }
    }

    /// Dequantizes all 32 elements to f32.
    pub fn dequantize(&self) -> [f32; GROUP_SIZE] {
        let d = self.scale.to_f32();
        let mut out = [0.0f32; GROUP_SIZE];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.quants[i] as f32 * d;
        }
        out
    }

    /// Serializes to the 34-byte AoS wire format.
    pub fn to_bytes(&self) -> [u8; Q8_0_BLOCK_BYTES] {
        let mut out = [0u8; Q8_0_BLOCK_BYTES];
        out[0..2].copy_from_slice(&self.scale.0.to_le_bytes());
        for (i, &q) in self.quants.iter().enumerate() {
            out[2 + i] = q as u8;
        }
        out
    }

    /// Deserializes from the 34-byte wire format.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than 34 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let scale = F16(u16::from_le_bytes([bytes[0], bytes[1]]));
        let mut quants = [0i8; GROUP_SIZE];
        for (i, q) in quants.iter_mut().enumerate() {
            *q = bytes[2 + i] as i8;
        }
        BlockQ8_0 { scale, quants }
    }
}

/// The 16-entry FP16 dequantization table for Q4_0: `table[code] = code - 8`.
///
/// This is exactly the `vlut16` content of paper Figure 9; alternative 4-bit
/// codecs (NF4, FP4, IQ4_NL) plug in by swapping this table.
pub fn q4_0_lut() -> [F16; 16] {
    std::array::from_fn(|i| F16::from_f32(i as f32 - 8.0))
}

/// NF4 (NormalFloat-4) dequantization table from the QLoRA paper, normalized
/// to [-1, 1]. Demonstrates the paper's point that LUT-centric dequantization
/// supports arbitrary 4-bit codecs by changing table contents only.
pub fn nf4_lut() -> [F16; 16] {
    const NF4: [f32; 16] = [
        -1.0, -0.6962, -0.5251, -0.3949, -0.2844, -0.1848, -0.0911, 0.0, 0.0796, 0.1609, 0.2461,
        0.3379, 0.4407, 0.5626, 0.7230, 1.0,
    ];
    std::array::from_fn(|i| F16::from_f32(NF4[i]))
}

/// One table-driven 4-bit group: 32 weights coded as indices into an
/// arbitrary 16-entry value table (NF4, FP4, IQ4_NL, ...), plus an FP16
/// scale.
///
/// This is the generalization the paper's Section 5.2.2 points at: the
/// `vlut16` dequantization kernel supports any such codec "simply by
/// adjusting the table contents". The codec quantizes by nearest-table-
/// entry after normalizing the group by its absolute maximum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockTable4 {
    /// Group scale (the group's absolute maximum).
    pub scale: F16,
    /// 32 4-bit table indices, two per byte (low nibble = even element).
    pub quants: [u8; GROUP_SIZE / 2],
}

impl BlockTable4 {
    /// Quantizes 32 values against a normalized table (entries in
    /// `[-1, 1]`, e.g. [`nf4_lut`]).
    ///
    /// # Panics
    ///
    /// Panics if `values` is not exactly 32 elements.
    pub fn quantize(values: &[f32], table: &[F16; 16]) -> Self {
        assert_eq!(values.len(), GROUP_SIZE);
        let amax = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = F16::from_f32(amax);
        let inv = if amax > 0.0 { 1.0 / amax } else { 0.0 };
        let mut quants = [0u8; GROUP_SIZE / 2];
        for (i, &v) in values.iter().enumerate() {
            let target = v * inv;
            let mut best = 0u8;
            let mut best_err = f32::INFINITY;
            for (c, entry) in table.iter().enumerate() {
                let err = (entry.to_f32() - target).abs();
                if err < best_err {
                    best_err = err;
                    best = c as u8;
                }
            }
            if i % 2 == 0 {
                quants[i / 2] |= best;
            } else {
                quants[i / 2] |= best << 4;
            }
        }
        BlockTable4 { scale, quants }
    }

    /// Extracts the 4-bit code of element `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        let byte = self.quants[i / 2];
        if i.is_multiple_of(2) {
            byte & 0x0f
        } else {
            byte >> 4
        }
    }

    /// Dequantizes all 32 elements through the table (FP16 rounding at
    /// each step, matching the `vlut16` + `vmpy` kernel path).
    pub fn dequantize_f16(&self, table: &[F16; 16]) -> [F16; GROUP_SIZE] {
        let mut out = [F16::ZERO; GROUP_SIZE];
        for (i, o) in out.iter_mut().enumerate() {
            *o = table[self.code(i) as usize].mul(self.scale);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Vec<f32> {
        (0..32).map(|i| (i as f32 - 15.5) / 4.0).collect()
    }

    #[test]
    fn q4_roundtrip_error_is_bounded() {
        let vals = ramp();
        let block = BlockQ4_0::quantize(&vals);
        let deq = block.dequantize();
        let step = block.scale.to_f32().abs();
        // Q4_0 is asymmetric: when the negative extreme sets the scale, the
        // positive extreme clips at code 15 with up to one full step of
        // error; everything else stays within half a step (plus rounding).
        for (orig, got) in vals.iter().zip(deq.iter()) {
            assert!(
                (orig - got).abs() <= step * 1.01 + 1e-3,
                "orig {orig} got {got} step {step}"
            );
        }
    }

    #[test]
    fn q4_extreme_element_maps_to_code_zero_or_fifteen() {
        // Negative extreme: scale positive, code 0 => -8 * d reproduces it.
        let mut vals = vec![0.1f32; 32];
        vals[7] = -4.0;
        let block = BlockQ4_0::quantize(&vals);
        assert_eq!(block.code(7), 0);
        assert!((block.dequantize()[7] - -4.0).abs() < 0.01);
        // Positive extreme: scale negative, still code 0.
        let mut vals = vec![0.1f32; 32];
        vals[3] = 4.0;
        let block = BlockQ4_0::quantize(&vals);
        assert_eq!(block.code(3), 0);
        assert!((block.dequantize()[3] - 4.0).abs() < 0.01);
        assert!(block.scale.to_f32() < 0.0);
    }

    #[test]
    fn q4_all_zero_group() {
        let block = BlockQ4_0::quantize(&[0.0f32; 32]);
        assert!(block.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn q4_codes_cover_nibble_packing() {
        let vals = ramp();
        let block = BlockQ4_0::quantize(&vals);
        // code() must agree with manual nibble extraction.
        for i in 0..32 {
            let byte = block.quants[i / 2];
            let manual = if i % 2 == 0 { byte & 0xf } else { byte >> 4 };
            assert_eq!(block.code(i), manual);
        }
    }

    #[test]
    fn q4_wire_roundtrip() {
        let block = BlockQ4_0::quantize(&ramp());
        let bytes = block.to_bytes();
        assert_eq!(BlockQ4_0::from_bytes(&bytes), block);
    }

    #[test]
    fn q4_f16_dequant_matches_f32_within_half_ulp() {
        let block = BlockQ4_0::quantize(&ramp());
        for i in 0..32 {
            let f16_path = block.dequantize_f16(i).to_f32();
            let f32_path = block.dequantize()[i];
            let tol = (f32_path.abs() * 1e-3).max(1e-4);
            assert!((f16_path - f32_path).abs() <= tol);
        }
    }

    #[test]
    fn q8_roundtrip_tight() {
        let vals = ramp();
        let block = BlockQ8_0::quantize(&vals);
        let deq = block.dequantize();
        let step = block.scale.to_f32();
        for (orig, got) in vals.iter().zip(deq.iter()) {
            assert!((orig - got).abs() <= step * 0.6 + 1e-4);
        }
    }

    #[test]
    fn q8_wire_roundtrip() {
        let block = BlockQ8_0::quantize(&ramp());
        let bytes = block.to_bytes();
        assert_eq!(BlockQ8_0::from_bytes(&bytes), block);
    }

    #[test]
    fn q8_error_much_smaller_than_q4() {
        let vals: Vec<f32> = (0..32)
            .map(|i| ((i * 37) % 17) as f32 / 5.0 - 1.6)
            .collect();
        let e4: f32 = BlockQ4_0::quantize(&vals)
            .dequantize()
            .iter()
            .zip(&vals)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let e8: f32 = BlockQ8_0::quantize(&vals)
            .dequantize()
            .iter()
            .zip(&vals)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(e8 < e4 / 16.0, "e8={e8} e4={e4}");
    }

    #[test]
    fn lut_contents_match_codes() {
        let lut = q4_0_lut();
        assert_eq!(lut[0].to_f32(), -8.0);
        assert_eq!(lut[8].to_f32(), 0.0);
        assert_eq!(lut[15].to_f32(), 7.0);
        let block = BlockQ4_0::quantize(&ramp());
        for i in 0..32 {
            let via_lut = lut[block.code(i) as usize].mul(block.scale);
            assert_eq!(via_lut, block.dequantize_f16(i));
        }
    }

    #[test]
    fn nf4_lut_is_monotone() {
        let lut = nf4_lut();
        for i in 1..16 {
            assert!(lut[i].to_f32() > lut[i - 1].to_f32());
        }
        assert_eq!(lut[0].to_f32(), -1.0);
        assert_eq!(lut[15].to_f32(), 1.0);
    }

    #[test]
    fn table4_nf4_roundtrip_bounded() {
        let table = nf4_lut();
        // Gaussian-ish values: NF4's quantile spacing should beat uniform
        // Q4_0 on them.
        let vals: Vec<f32> = (0..32)
            .map(|i| ((i * 7 % 13) as f32 / 6.0 - 1.0) * 1.5)
            .collect();
        let block = BlockTable4::quantize(&vals, &table);
        let deq = block.dequantize_f16(&table);
        for (orig, got) in vals.iter().zip(deq.iter()) {
            assert!((orig - got.to_f32()).abs() < 0.3, "{orig} vs {got}");
        }
    }

    #[test]
    fn table4_extremes_map_to_table_ends() {
        let table = nf4_lut();
        let mut vals = vec![0.0f32; 32];
        vals[0] = 2.0;
        vals[1] = -2.0;
        let block = BlockTable4::quantize(&vals, &table);
        assert_eq!(block.code(0), 15); // +1.0 entry.
        assert_eq!(block.code(1), 0); // -1.0 entry.
        let deq = block.dequantize_f16(&table);
        assert_eq!(deq[0].to_f32(), 2.0);
        assert_eq!(deq[1].to_f32(), -2.0);
    }

    #[test]
    fn nf4_error_comparable_to_q4_0_on_gaussian_data() {
        // Table codecs trade the uniform grid for quantile spacing; on
        // Gaussian data NF4 is competitive with (here: within ~15% of)
        // the asymmetric 16-level Q4_0 grid. The paper's point is not that
        // NF4 wins but that the LUT kernel supports it for free.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut nf4_se = 0.0f64;
        let mut q4_se = 0.0f64;
        let table = nf4_lut();
        for _ in 0..64 {
            let vals: Vec<f32> = (0..32)
                .map(|_| {
                    let u1: f32 = rng.gen_range(1e-6..1.0f32);
                    let u2: f32 = rng.gen_range(0.0..1.0f32);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                })
                .collect();
            let nf4 = BlockTable4::quantize(&vals, &table).dequantize_f16(&table);
            let q4 = BlockQ4_0::quantize(&vals).dequantize();
            for i in 0..32 {
                nf4_se += ((vals[i] - nf4[i].to_f32()) as f64).powi(2);
                q4_se += ((vals[i] - q4[i]) as f64).powi(2);
            }
        }
        assert!(nf4_se < q4_se * 1.25, "nf4 {nf4_se} vs q4 {q4_se}");
        assert!(q4_se < nf4_se * 1.25, "q4 {q4_se} vs nf4 {nf4_se}");
    }
}
