//! Quantization substrate for the EuroSys '26 mobile-NPU test-time-scaling
//! reproduction.
//!
//! Implements every quantization scheme the paper touches:
//!
//! - **Q4_0 / Q8_0 group quantization** ([`block`]) — llama.cpp-compatible
//!   32-element groups with an FP16 scale (4.5 / 8.5 bits per weight).
//! - **Weight layouts** ([`layout`]) — the conventional column-major group
//!   layout used by CPU dot-product kernels, and the paper's *tile-group*
//!   layout (Section 5.1.1): weights permuted into the HMX tile order
//!   *before* round-to-nearest quantization, so that dequantized values
//!   stream contiguously into TCM.
//! - **Super-group coalescing** ([`super_group`], paper Figure 7) — eight
//!   Q4_0 groups repacked so 256 INT4 values fill one 128-byte HVX register,
//!   with the eight scales gathered behind them.
//! - **Per-channel / per-tensor quantization** ([`channel`]) — the
//!   coarse-grained schemes QNN supports, which Table 1 shows destroy
//!   reasoning accuracy.
//! - **AWQ-lite** ([`awq`]) — activation-aware per-input-channel
//!   equalization before group quantization, the paper's accuracy baseline.
//! - **Error metrics** ([`metrics`]) and a synthetic LLM-like weight
//!   generator with outlier channels ([`synth`]) used by the accuracy
//!   experiments.

pub mod awq;
pub mod block;
pub mod channel;
pub mod layout;
pub mod metrics;
pub mod super_group;
pub mod synth;

pub use block::{BlockQ4_0, BlockQ8_0, GROUP_SIZE};
pub use layout::{QuantScheme, QuantizedMatrix, WeightLayout};
pub use metrics::QuantError;
pub use super_group::{SuperBlockQ4, SuperBlockQ8};
