//! Weight-matrix quantization layouts: conventional column-major groups vs
//! the paper's HMX tile-group layout (Section 5.1.1).
//!
//! A weight matrix `W` has shape `[k, n]`: `k` is the accumulation
//! dimension (input features), `n` the output dimension, and GEMM computes
//! `Y[m, n] = X[m, k] x W[k, n]`.
//!
//! - **Column-major groups** (llama.cpp CPU backend): each output column is
//!   stored contiguously along `k` and split into groups of 32; blocks are
//!   interleaved scale+quants (AoS). On the NPU this layout forces the
//!   dequantizer to *scatter* values into the HMX tile order (Figure 6).
//! - **HMX tile groups** (ours): the matrix is first permuted into the exact
//!   byte order the HMX expects — column-major 32x32 tiles, each with the
//!   two-row interleave of Figure 4a — and *then* quantized in consecutive
//!   runs of 32, which correspond to 2x16 sub-tiles of the original matrix.
//!   Dequantized registers can be stored to TCM contiguously.

use hexsim::hmx::{tile_elem_offset, TILE_DIM};

use crate::block::{BlockQ4_0, BlockQ8_0, GROUP_SIZE, Q4_0_BLOCK_BYTES, Q8_0_BLOCK_BYTES};

/// Which block codec a matrix uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuantScheme {
    /// 4-bit groups of 32 (4.5 bits per weight).
    Q4_0,
    /// 8-bit groups of 32 (8.5 bits per weight).
    Q8_0,
}

impl QuantScheme {
    /// Serialized bytes per 32-element block.
    pub fn block_bytes(self) -> usize {
        match self {
            QuantScheme::Q4_0 => Q4_0_BLOCK_BYTES,
            QuantScheme::Q8_0 => Q8_0_BLOCK_BYTES,
        }
    }

    /// Effective bits per weight including the scale.
    pub fn bits_per_weight(self) -> f64 {
        self.block_bytes() as f64 * 8.0 / GROUP_SIZE as f64
    }
}

/// The element ordering that groups are formed over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightLayout {
    /// Conventional: groups along each output column (k-major).
    ColumnMajorGroups,
    /// Paper Section 5.1.1: groups in HMX tile memory order.
    HmxTileGroups,
}

/// A quantized weight matrix: AoS blocks in layout order.
#[derive(Clone, Debug)]
pub struct QuantizedMatrix {
    /// Accumulation dimension (rows of `W`, multiple of 32).
    pub k: usize,
    /// Output dimension (columns of `W`, multiple of 32).
    pub n: usize,
    /// Block codec.
    pub scheme: QuantScheme,
    /// Element ordering.
    pub layout: WeightLayout,
    /// Serialized blocks, `(k * n / 32) * block_bytes` bytes.
    pub bytes: Vec<u8>,
}

/// Flat element index (into row-major `W[k][n]`) of the `pos`-th element in
/// the HMX stream order: column-major tiles, two-row interleave inside.
fn hmx_stream_index(pos: usize, k: usize, n: usize) -> usize {
    let tile_elems = TILE_DIM * TILE_DIM;
    let k_tiles = k / TILE_DIM;
    let tile_idx = pos / tile_elems;
    let within = pos % tile_elems;
    // Column-major tile order: k-tile varies fastest (Figure 4b).
    let n_tile = tile_idx / k_tiles;
    let k_tile = tile_idx % k_tiles;
    // Invert the interleaved within-tile offset: offset -> (row, col).
    let pair = within / (TILE_DIM * 2);
    let slot = within % (TILE_DIM * 2);
    let col = slot / 2;
    let row = pair * 2 + slot % 2;
    debug_assert_eq!(tile_elem_offset(row, col), within * 2);
    let kk = k_tile * TILE_DIM + row;
    let nn = n_tile * TILE_DIM + col;
    kk * n + nn
}

/// Flat element index of the `pos`-th element in conventional column-major
/// group order (whole column of `W`, k-major, column by column).
fn colmajor_stream_index(pos: usize, k: usize, _n: usize) -> usize {
    let col = pos / k;
    let row = pos % k;
    row * _n + col
}

impl QuantizedMatrix {
    /// Quantizes a row-major `[k, n]` f32 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `n` is not a multiple of 32 or if `weights` has the
    /// wrong length.
    pub fn quantize(
        weights: &[f32],
        k: usize,
        n: usize,
        scheme: QuantScheme,
        layout: WeightLayout,
    ) -> Self {
        assert_eq!(weights.len(), k * n, "weight length mismatch");
        assert!(
            k.is_multiple_of(TILE_DIM) && n.is_multiple_of(TILE_DIM),
            "dims must be x32"
        );
        let total = k * n;
        let blocks = total / GROUP_SIZE;
        let mut bytes = Vec::with_capacity(blocks * scheme.block_bytes());
        let mut group = [0.0f32; GROUP_SIZE];
        for b in 0..blocks {
            for (i, g) in group.iter_mut().enumerate() {
                let pos = b * GROUP_SIZE + i;
                let flat = match layout {
                    WeightLayout::ColumnMajorGroups => colmajor_stream_index(pos, k, n),
                    WeightLayout::HmxTileGroups => hmx_stream_index(pos, k, n),
                };
                *g = weights[flat];
            }
            match scheme {
                QuantScheme::Q4_0 => {
                    bytes.extend_from_slice(&BlockQ4_0::quantize(&group).to_bytes())
                }
                QuantScheme::Q8_0 => {
                    bytes.extend_from_slice(&BlockQ8_0::quantize(&group).to_bytes())
                }
            }
        }
        QuantizedMatrix {
            k,
            n,
            scheme,
            layout,
            bytes,
        }
    }

    /// Number of 32-element blocks.
    pub fn num_blocks(&self) -> usize {
        self.k * self.n / GROUP_SIZE
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Parses block `idx` as Q4_0.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not Q4_0 or `idx` is out of range.
    pub fn block_q4(&self, idx: usize) -> BlockQ4_0 {
        assert_eq!(self.scheme, QuantScheme::Q4_0);
        let off = idx * Q4_0_BLOCK_BYTES;
        BlockQ4_0::from_bytes(&self.bytes[off..off + Q4_0_BLOCK_BYTES])
    }

    /// Parses block `idx` as Q8_0.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not Q8_0 or `idx` is out of range.
    pub fn block_q8(&self, idx: usize) -> BlockQ8_0 {
        assert_eq!(self.scheme, QuantScheme::Q8_0);
        let off = idx * Q8_0_BLOCK_BYTES;
        BlockQ8_0::from_bytes(&self.bytes[off..off + Q8_0_BLOCK_BYTES])
    }

    /// Dequantizes back to a row-major `[k, n]` f32 matrix (inverting the
    /// layout permutation), for error measurement and reference math.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for b in 0..self.num_blocks() {
            let vals: [f32; GROUP_SIZE] = match self.scheme {
                QuantScheme::Q4_0 => self.block_q4(b).dequantize(),
                QuantScheme::Q8_0 => self.block_q8(b).dequantize(),
            };
            for (i, &v) in vals.iter().enumerate() {
                let pos = b * GROUP_SIZE + i;
                let flat = match self.layout {
                    WeightLayout::ColumnMajorGroups => colmajor_stream_index(pos, self.k, self.n),
                    WeightLayout::HmxTileGroups => hmx_stream_index(pos, self.k, self.n),
                };
                out[flat] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::gaussian_matrix;

    #[test]
    fn hmx_stream_is_a_permutation() {
        let (k, n) = (64, 96);
        let mut seen = vec![false; k * n];
        for pos in 0..k * n {
            let flat = hmx_stream_index(pos, k, n);
            assert!(!seen[flat], "duplicate at pos {pos}");
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hmx_stream_groups_are_2x16_subtiles() {
        // Paper Section 5.1.1: a 32-element group in the new order covers
        // 2 rows x 16 columns of the original matrix.
        let (k, n) = (64, 64);
        let mut rows = std::collections::BTreeSet::new();
        let mut cols = std::collections::BTreeSet::new();
        for i in 0..GROUP_SIZE {
            let flat = hmx_stream_index(i, k, n);
            rows.insert(flat / n);
            cols.insert(flat % n);
        }
        assert_eq!(rows.len(), 2);
        assert_eq!(cols.len(), 16);
    }

    #[test]
    fn hmx_stream_tiles_are_column_major() {
        // The second tile in stream order must be the next k-tile of the
        // same n-tile column (inner product at tile level, Figure 4b).
        let (k, n) = (64, 64);
        let first_of_tile1 = hmx_stream_index(TILE_DIM * TILE_DIM, k, n);
        let row = first_of_tile1 / n;
        let col = first_of_tile1 % n;
        assert_eq!(row, 32, "second tile should advance along k");
        assert_eq!(col, 0);
    }

    #[test]
    fn colmajor_stream_walks_columns() {
        let (k, n) = (64, 32);
        assert_eq!(colmajor_stream_index(0, k, n), 0);
        assert_eq!(colmajor_stream_index(1, k, n), n); // Next row, same col.
        assert_eq!(colmajor_stream_index(k, k, n), 1); // Next column.
    }

    #[test]
    fn quantize_dequantize_preserves_shape_and_error() {
        let (k, n) = (64, 64);
        let w = gaussian_matrix(k, n, 42, 1.0, 0.0);
        for layout in [WeightLayout::ColumnMajorGroups, WeightLayout::HmxTileGroups] {
            let qm = QuantizedMatrix::quantize(&w, k, n, QuantScheme::Q4_0, layout);
            assert_eq!(qm.num_blocks(), k * n / 32);
            let deq = qm.dequantize();
            assert_eq!(deq.len(), w.len());
            let mse: f32 = w
                .iter()
                .zip(&deq)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                / w.len() as f32;
            assert!(mse < 0.02, "layout {layout:?} mse {mse}");
        }
    }

    #[test]
    fn tile_group_error_comparable_to_conventional() {
        // Paper Table 4's premise: tile grouping does not meaningfully change
        // quantization error for zero-mean Gaussian-ish weights.
        let (k, n) = (128, 128);
        let w = gaussian_matrix(k, n, 7, 1.0, 0.0);
        let mse = |layout| {
            let qm = QuantizedMatrix::quantize(&w, k, n, QuantScheme::Q4_0, layout);
            let deq = qm.dequantize();
            w.iter()
                .zip(&deq)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                / w.len() as f32
        };
        let conv = mse(WeightLayout::ColumnMajorGroups);
        let tile = mse(WeightLayout::HmxTileGroups);
        let ratio = tile / conv;
        assert!(
            (0.8..1.25).contains(&ratio),
            "tile/conventional mse ratio {ratio}"
        );
    }

    #[test]
    fn q8_layouts_roundtrip_tightly() {
        let (k, n) = (32, 64);
        let w = gaussian_matrix(k, n, 3, 1.0, 0.0);
        let qm =
            QuantizedMatrix::quantize(&w, k, n, QuantScheme::Q8_0, WeightLayout::HmxTileGroups);
        let deq = qm.dequantize();
        let max_err = w
            .iter()
            .zip(&deq)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.05, "max_err {max_err}");
    }

    #[test]
    fn bits_per_weight() {
        assert!((QuantScheme::Q4_0.bits_per_weight() - 4.5).abs() < 1e-12);
        assert!((QuantScheme::Q8_0.bits_per_weight() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn byte_len_matches_scheme() {
        let (k, n) = (32, 32);
        let w = vec![0.5f32; k * n];
        let q4 =
            QuantizedMatrix::quantize(&w, k, n, QuantScheme::Q4_0, WeightLayout::HmxTileGroups);
        assert_eq!(q4.byte_len(), 32 * 18);
        let q8 =
            QuantizedMatrix::quantize(&w, k, n, QuantScheme::Q8_0, WeightLayout::HmxTileGroups);
        assert_eq!(q8.byte_len(), 32 * 34);
    }
}
