//! AWQ-lite: activation-aware weight equalization before group quantization.
//!
//! AWQ (Lin et al., MLSys '24) observes that the weights multiplying
//! high-magnitude activation channels matter most, and protects them by
//! scaling input channels up before quantization (and folding the inverse
//! scale into the preceding operator). The paper uses AutoAWQ W4A16 as its
//! accuracy baseline (Table 1). This module implements the per-input-channel
//! equalization search with the standard `alpha` grid, enough to reproduce
//! the group-vs-channel accuracy comparison on synthetic weights.

use crate::layout::{QuantScheme, QuantizedMatrix, WeightLayout};
use crate::metrics::QuantError;

/// Result of AWQ scaling: the chosen per-input-channel scales and the
/// dequantized (already de-scaled) weights.
#[derive(Clone, Debug)]
pub struct AwqResult {
    /// Chosen equalization exponent.
    pub alpha: f32,
    /// Per-input-channel scales applied before quantization.
    pub scales: Vec<f32>,
    /// Reconstructed weights after quantize -> dequantize -> unscale.
    pub dequantized: Vec<f32>,
    /// Reconstruction error weighted by activation magnitude.
    pub weighted_mse: f64,
}

/// Computes AWQ-style scales `s_k = act[k]^alpha / wmax[k]^(1-alpha)` for
/// one candidate alpha, quantizes the scaled matrix per-group, and measures
/// activation-weighted reconstruction error.
fn try_alpha(
    weights: &[f32],
    k: usize,
    n: usize,
    act_amax: &[f32],
    alpha: f32,
    scheme: QuantScheme,
) -> AwqResult {
    // Per-input-channel weight magnitude (row of W).
    let mut wmax = vec![1e-8f32; k];
    for ki in 0..k {
        for ni in 0..n {
            wmax[ki] = wmax[ki].max(weights[ki * n + ni].abs());
        }
    }
    let scales: Vec<f32> = (0..k)
        .map(|ki| {
            let a = act_amax[ki].max(1e-8);
            let s = a.powf(alpha) / wmax[ki].powf(1.0 - alpha);
            s.clamp(1e-4, 1e4)
        })
        .collect();

    // Scale rows, quantize, dequantize, unscale.
    let mut scaled = vec![0.0f32; k * n];
    for ki in 0..k {
        for ni in 0..n {
            scaled[ki * n + ni] = weights[ki * n + ni] * scales[ki];
        }
    }
    let qm = QuantizedMatrix::quantize(&scaled, k, n, scheme, WeightLayout::ColumnMajorGroups);
    let mut deq = qm.dequantize();
    for ki in 0..k {
        for ni in 0..n {
            deq[ki * n + ni] /= scales[ki];
        }
    }

    // Activation-weighted MSE approximates output-error, the AWQ objective.
    let mut werr = 0.0f64;
    let mut wsum = 0.0f64;
    for ki in 0..k {
        let a2 = (act_amax[ki] * act_amax[ki]) as f64;
        for ni in 0..n {
            let d = (weights[ki * n + ni] - deq[ki * n + ni]) as f64;
            werr += a2 * d * d;
            wsum += a2;
        }
    }
    AwqResult {
        alpha,
        scales,
        dequantized: deq,
        weighted_mse: werr / wsum.max(1e-30),
    }
}

/// Runs the AWQ grid search over `alpha in {0, 0.1, ..., 1.0}` and returns
/// the best result by activation-weighted reconstruction error.
///
/// `act_amax[k]` is the per-input-channel absolute maximum observed on
/// calibration activations (the "small amounts of calibration data" of the
/// original method).
///
/// # Panics
///
/// Panics if `weights.len() != k * n` or `act_amax.len() != k`.
pub fn awq_quantize(
    weights: &[f32],
    k: usize,
    n: usize,
    act_amax: &[f32],
    scheme: QuantScheme,
) -> AwqResult {
    assert_eq!(weights.len(), k * n);
    assert_eq!(act_amax.len(), k);
    let mut best: Option<AwqResult> = None;
    for step in 0..=10 {
        let alpha = step as f32 / 10.0;
        let r = try_alpha(weights, k, n, act_amax, alpha, scheme);
        if best
            .as_ref()
            .map(|b| r.weighted_mse < b.weighted_mse)
            .unwrap_or(true)
        {
            best = Some(r);
        }
    }
    best.expect("grid search is non-empty")
}

/// Plain round-to-nearest group quantization error, for the comparison
/// column of Table 1 experiments.
pub fn rtn_group_error(weights: &[f32], k: usize, n: usize, scheme: QuantScheme) -> QuantError {
    let qm = QuantizedMatrix::quantize(weights, k, n, scheme, WeightLayout::ColumnMajorGroups);
    QuantError::measure(weights, &qm.dequantize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{activation_amax, gaussian_matrix};

    #[test]
    fn awq_beats_plain_rtn_on_weighted_error() {
        let (k, n) = (128, 64);
        let w = gaussian_matrix(k, n, 21, 1.0, 0.02);
        let act = activation_amax(k, 21, 4.0);
        let awq = awq_quantize(&w, k, n, &act, QuantScheme::Q4_0);
        // Baseline: alpha = 0 degenerates to (almost) plain RTN grouping.
        let rtn = try_alpha(&w, k, n, &act, 0.0, QuantScheme::Q4_0);
        assert!(
            awq.weighted_mse <= rtn.weighted_mse * 1.0001,
            "awq {} rtn {}",
            awq.weighted_mse,
            rtn.weighted_mse
        );
    }

    #[test]
    fn awq_selects_intermediate_alpha_with_spiky_activations() {
        let (k, n) = (64, 64);
        let w = gaussian_matrix(k, n, 33, 1.0, 0.0);
        let mut act = vec![1.0f32; k];
        // A few very hot activation channels.
        act[3] = 50.0;
        act[17] = 80.0;
        let r = awq_quantize(&w, k, n, &act, QuantScheme::Q4_0);
        assert!(r.alpha > 0.0, "expected nonzero alpha, got {}", r.alpha);
        // Hot channels must receive larger protection scales.
        assert!(r.scales[17] > r.scales[0]);
    }

    #[test]
    fn awq_reconstruction_shape() {
        let (k, n) = (32, 32);
        let w = gaussian_matrix(k, n, 2, 1.0, 0.0);
        let act = activation_amax(k, 2, 2.0);
        let r = awq_quantize(&w, k, n, &act, QuantScheme::Q4_0);
        assert_eq!(r.dequantized.len(), k * n);
        assert_eq!(r.scales.len(), k);
        let err = QuantError::measure(&w, &r.dequantized);
        assert!(err.rmse < 0.25, "rmse {}", err.rmse);
    }

    #[test]
    fn q8_awq_is_tighter_than_q4_awq() {
        let (k, n) = (64, 32);
        let w = gaussian_matrix(k, n, 8, 1.0, 0.01);
        let act = activation_amax(k, 8, 3.0);
        let q4 = awq_quantize(&w, k, n, &act, QuantScheme::Q4_0);
        let q8 = awq_quantize(&w, k, n, &act, QuantScheme::Q8_0);
        assert!(q8.weighted_mse < q4.weighted_mse / 4.0);
    }
}
