//! Coarse-grained quantization: per-channel and per-tensor symmetric INT4,
//! the only schemes QNN supports for weights (paper Section 3.3).
//!
//! Table 1 of the paper shows that per-channel W4 quantization collapses
//! mathematical-reasoning accuracy (MATH500 15.9 -> 2.1) while fine-grained
//! group quantization survives. The mechanism is scale dilution: one scale
//! must cover an entire output channel (thousands of weights), so outlier
//! weights inflate the step size for everyone. These implementations exist
//! to reproduce that comparison.

use hexsim::f16::F16;

/// Per-output-channel symmetric INT4 quantization of a `[k, n]` matrix.
#[derive(Clone, Debug)]
pub struct PerChannelQ4 {
    /// Accumulation dimension.
    pub k: usize,
    /// Output channels.
    pub n: usize,
    /// One scale per output channel.
    pub scales: Vec<F16>,
    /// 4-bit codes, element `(ki, ni)` at flat index `ki * n + ni`; two
    /// codes per byte in flat order.
    pub quants: Vec<u8>,
}

impl PerChannelQ4 {
    /// Quantizes a row-major `[k, n]` matrix with one scale per column.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != k * n` or `k * n` is odd.
    pub fn quantize(weights: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(weights.len(), k * n);
        assert_eq!((k * n) % 2, 0);
        // One symmetric scale per output channel (column).
        let mut scales = vec![F16::ZERO; n];
        for ni in 0..n {
            let mut amax = 0.0f32;
            for ki in 0..k {
                amax = amax.max(weights[ki * n + ni].abs());
            }
            scales[ni] = F16::from_f32(amax / 7.0);
        }
        let mut quants = vec![0u8; k * n / 2];
        for flat in 0..k * n {
            let ni = flat % n;
            let d = scales[ni].to_f32();
            let id = if d != 0.0 { 1.0 / d } else { 0.0 };
            let q = ((weights[flat] * id).round().clamp(-8.0, 7.0) as i32 + 8) as u8;
            if flat % 2 == 0 {
                quants[flat / 2] |= q;
            } else {
                quants[flat / 2] |= q << 4;
            }
        }
        PerChannelQ4 {
            k,
            n,
            scales,
            quants,
        }
    }

    /// Dequantizes back to a row-major f32 matrix.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for (flat, o) in out.iter_mut().enumerate() {
            let ni = flat % self.n;
            let byte = self.quants[flat / 2];
            let q = if flat % 2 == 0 { byte & 0xf } else { byte >> 4 };
            *o = (q as i32 - 8) as f32 * self.scales[ni].to_f32();
        }
        out
    }
}

/// Per-tensor symmetric INT4: a single scale for the whole matrix (the
/// coarsest scheme; included for completeness of the QNN comparison).
#[derive(Clone, Debug)]
pub struct PerTensorQ4 {
    /// Accumulation dimension.
    pub k: usize,
    /// Output channels.
    pub n: usize,
    /// The single tensor-wide scale.
    pub scale: F16,
    /// 4-bit codes, two per byte in flat row-major order.
    pub quants: Vec<u8>,
}

impl PerTensorQ4 {
    /// Quantizes with one scale for the entire tensor.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != k * n` or `k * n` is odd.
    pub fn quantize(weights: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(weights.len(), k * n);
        assert_eq!((k * n) % 2, 0);
        let amax = weights.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = F16::from_f32(amax / 7.0);
        let d = scale.to_f32();
        let id = if d != 0.0 { 1.0 / d } else { 0.0 };
        let mut quants = vec![0u8; k * n / 2];
        for (flat, &w) in weights.iter().enumerate() {
            let q = ((w * id).round().clamp(-8.0, 7.0) as i32 + 8) as u8;
            if flat % 2 == 0 {
                quants[flat / 2] |= q;
            } else {
                quants[flat / 2] |= q << 4;
            }
        }
        PerTensorQ4 {
            k,
            n,
            scale,
            quants,
        }
    }

    /// Dequantizes back to a row-major f32 matrix.
    pub fn dequantize(&self) -> Vec<f32> {
        let d = self.scale.to_f32();
        let mut out = vec![0.0f32; self.k * self.n];
        for (flat, o) in out.iter_mut().enumerate() {
            let byte = self.quants[flat / 2];
            let q = if flat % 2 == 0 { byte & 0xf } else { byte >> 4 };
            *o = (q as i32 - 8) as f32 * d;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{QuantScheme, QuantizedMatrix, WeightLayout};
    use crate::metrics::QuantError;
    use crate::synth::gaussian_matrix;

    #[test]
    fn per_channel_roundtrip_on_smooth_weights() {
        let (k, n) = (64, 32);
        let w = gaussian_matrix(k, n, 11, 0.5, 0.0);
        let pc = PerChannelQ4::quantize(&w, k, n);
        let deq = pc.dequantize();
        let err = QuantError::measure(&w, &deq);
        assert!(err.rmse < 0.08, "rmse {}", err.rmse);
    }

    #[test]
    fn outliers_destroy_per_channel_but_not_groups() {
        // The Table 1 mechanism: with outlier weights (heavy-tailed LLM
        // channels), per-channel scales dilute and error explodes relative
        // to 32-element groups.
        let (k, n) = (256, 64);
        let w = gaussian_matrix(k, n, 5, 1.0, 0.02);
        let pc = PerChannelQ4::quantize(&w, k, n).dequantize();
        let grouped =
            QuantizedMatrix::quantize(&w, k, n, QuantScheme::Q4_0, WeightLayout::ColumnMajorGroups)
                .dequantize();
        let e_pc = QuantError::measure(&w, &pc);
        let e_g = QuantError::measure(&w, &grouped);
        assert!(
            e_pc.mse > 3.0 * e_g.mse,
            "per-channel mse {} vs group mse {}",
            e_pc.mse,
            e_g.mse
        );
    }

    #[test]
    fn per_tensor_worse_than_per_channel() {
        let (k, n) = (128, 64);
        let w = gaussian_matrix(k, n, 9, 1.0, 0.02);
        let e_pt = QuantError::measure(&w, &PerTensorQ4::quantize(&w, k, n).dequantize());
        let e_pc = QuantError::measure(&w, &PerChannelQ4::quantize(&w, k, n).dequantize());
        assert!(
            e_pt.mse >= e_pc.mse * 0.99,
            "pt {} pc {}",
            e_pt.mse,
            e_pc.mse
        );
    }

    #[test]
    fn zero_matrix_is_fixed_point() {
        let w = vec![0.0f32; 64];
        let pc = PerChannelQ4::quantize(&w, 8, 8);
        assert!(pc.dequantize().iter().all(|&v| v == 0.0));
        let pt = PerTensorQ4::quantize(&w, 8, 8);
        assert!(pt.dequantize().iter().all(|&v| v == 0.0));
    }
}
