//! NPU operator library (`htp-ops-lib` analog) for the EuroSys '26
//! reproduction: every kernel the paper builds on the Hexagon NPU,
//! implemented against the [`hexsim`] simulator.
//!
//! - [`dequant`] — INT4/INT8 -> FP16 dequantization: the paper's `vlut16`
//!   LUT path with super-group coalescing and `vlut16` scale broadcast
//!   (Figure 9, Section 5.2.2), plus the naive unpack-convert chain and the
//!   conventional-layout scatter path used as ablation baselines.
//! - [`gemm`] — mixed-precision GEMM/GEMV on the HMX with streaming weight
//!   dequantization; four variants matching Figure 15's ablation arms.
//! - [`exp_lut`] — the 64 KiB `vgather` exp LUT (Section 5.2.1) and the
//!   F32/F16 polynomial exponentials it replaces.
//! - [`softmax`] — safe-softmax row kernels parameterized by exp method
//!   (Figure 14's ablation).
//! - [`attention`] — FP16 FlashAttention per the paper's Algorithm 1, with
//!   the stage-level latency breakdown of Figure 8, and an F32 reference
//!   attention (Table 5's baseline).
//! - [`misc`] — RMSNorm, RoPE, SiLU and residual-add vector kernels.
//! - [`mod@reference`] — f32/f64 reference math for numeric testing.
//!
//! # Cost-model conventions
//!
//! Kernels emit real instructions through [`hexsim::ctx::NpuContext`]
//! wherever the data path is the paper's contribution (the LUT dequant
//! chain, the exp LUT, tile layouts). For the deliberately-inefficient
//! baseline paths whose byte manipulation is awkward to express with wide
//! vectors (that awkwardness being the paper's very point), the functional
//! result is computed exactly while the instruction trace is charged
//! analytically; each such site is commented with its modeled sequence.

pub mod attention;
pub mod dequant;
pub mod exp_lut;
pub mod gemm;
pub mod misc;
pub mod reference;
pub mod softmax;

pub use attention::{FlashAttention, FlashAttentionBreakdown};
pub use dequant::DequantEnv;
pub use exp_lut::{ExpLut16, ExpMethod};
pub use gemm::{DequantVariant, GemmConfig, GemmResult};
