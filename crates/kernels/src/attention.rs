//! FP16 FlashAttention on the simulated NPU — the paper's Algorithm 1 —
//! with the stage-level latency breakdown of Figure 8.
//!
//! The kernel processes one GQA group: a single KV head shared by
//! `q_heads_per_kv` query heads (Qwen2.5-1.5B shares each KV head across 6
//! query heads). KV tiles stream from DDR once per block and are reused by
//! every query head in the group — which is why the Figure 8 load/store
//! share *shrinks* as the query batch grows while the softmax share
//! explodes.
//!
//! State follows the paper exactly: `S`, `P`, `O`, `m`, `l` are FP16; the
//! `QK^T` MAC and the row-sum of `P` accumulate in FP32 (`AccumType=FP32`);
//! the exponential is pluggable (F32/F16 polynomial or the 64 KiB LUT).
//!
//! Functional math runs at tile level with per-element FP16 rounding that
//! mirrors the vector kernels bit-for-bit (the LUT path reads the actual
//! TCM-resident table); the instruction trace is charged per stage from the
//! same formulas the standalone kernels produce.

use hexsim::cost::{PhaseCost, NUM_ENGINES};
use hexsim::f16::F16;
use hexsim::prelude::*;

use crate::exp_lut::{charge_exp, exp_scalar, ExpLut16, ExpMethod};

/// Attention workload shape for one GQA group.
#[derive(Clone, Copy, Debug)]
pub struct AttnShape {
    /// Query length (decode batch size in test-time scaling).
    pub nq: usize,
    /// KV (context) length.
    pub nkv: usize,
    /// Head dimension (multiple of 32).
    pub head_dim: usize,
}

/// Per-stage cost buckets matching Figure 8's legend.
#[derive(Clone, Debug, Default)]
pub struct FlashAttentionBreakdown {
    /// "QKVO Load/Store": KV streaming plus Q load and O store DMA.
    pub load_store: PhaseCost,
    /// "MatMul (QK, DO+PV)": HMX tile-ops and their tile traffic.
    pub matmul: PhaseCost,
    /// "Softmax": max/subtract/exp/sum/rescale vector work.
    pub softmax: PhaseCost,
}

impl FlashAttentionBreakdown {
    /// Total wall time: stages execute sequentially per block (the
    /// figure's percentages sum to 100).
    pub fn total_wall(&self) -> f64 {
        self.load_store.wall_secs + self.matmul.wall_secs + self.softmax.wall_secs
    }

    /// Percentage shares `[load_store, matmul, softmax]`.
    pub fn shares(&self) -> [f64; 3] {
        let t = self.total_wall().max(1e-30);
        [
            self.load_store.wall_secs / t * 100.0,
            self.matmul.wall_secs / t * 100.0,
            self.softmax.wall_secs / t * 100.0,
        ]
    }

    fn scale(&mut self, factor: f64) {
        for p in [&mut self.load_store, &mut self.matmul, &mut self.softmax] {
            for i in 0..NUM_ENGINES {
                p.engine_secs[i] *= factor;
            }
            p.wall_secs *= factor;
        }
    }

    fn add_delta(bucket: &mut PhaseCost, delta: &PhaseCost) {
        for i in 0..NUM_ENGINES {
            bucket.engine_secs[i] += delta.engine_secs[i];
        }
        bucket.wall_secs += delta.wall_secs;
    }
}

/// FlashAttention kernel configuration.
pub struct FlashAttention<'a> {
    /// The TCM-resident exp LUT (used when `method == Lut16`).
    pub lut: &'a ExpLut16,
    /// Exponential implementation.
    pub method: ExpMethod,
    /// KV block length streamed per iteration (multiple of 32).
    pub kv_block: usize,
    /// Query heads sharing one KV head (GQA group size).
    pub q_heads_per_kv: usize,
}

impl<'a> FlashAttention<'a> {
    /// Creates a kernel with the paper-typical block size of 128.
    pub fn new(lut: &'a ExpLut16, method: ExpMethod, q_heads_per_kv: usize) -> Self {
        FlashAttention {
            lut,
            method,
            kv_block: 128,
            q_heads_per_kv,
        }
    }

    /// Runs attention for one GQA group.
    ///
    /// `q`: `[G, nq, d]` (G = `q_heads_per_kv`), `k`/`v`: `[nkv, d]`, all
    /// row-major FP16. Returns the `[G, nq, d]` output and the Figure 8
    /// breakdown. In cost-only mode the returned output is empty.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent, `head_dim % 32 != 0`, or
    /// `nkv == 0`.
    pub fn run(
        &self,
        ctx: &mut NpuContext,
        shape: AttnShape,
        q: &[F16],
        k: &[F16],
        v: &[F16],
    ) -> (Vec<F16>, FlashAttentionBreakdown) {
        self.run_with_mask(ctx, shape, q, k, v, None)
    }

    /// Causal variant for prefill: query row `i` (at absolute position
    /// `q_start + i`) attends only to KV positions `<= q_start + i`. Tile
    /// work is charged unmasked (the hardware computes full tiles; masking
    /// happens in the softmax pass), matching the kernel the paper runs
    /// during prefill.
    pub fn run_causal(
        &self,
        ctx: &mut NpuContext,
        shape: AttnShape,
        q: &[F16],
        k: &[F16],
        v: &[F16],
        q_start: usize,
    ) -> (Vec<F16>, FlashAttentionBreakdown) {
        self.run_with_mask(ctx, shape, q, k, v, Some(q_start))
    }

    fn run_with_mask(
        &self,
        ctx: &mut NpuContext,
        shape: AttnShape,
        q: &[F16],
        k: &[F16],
        v: &[F16],
        causal_start: Option<usize>,
    ) -> (Vec<F16>, FlashAttentionBreakdown) {
        let AttnShape {
            nq,
            nkv,
            head_dim: d,
        } = shape;
        let g = self.q_heads_per_kv;
        assert!(d % 32 == 0, "head_dim must be a multiple of 32");
        assert!(nkv > 0, "empty KV cache");
        let functional = ctx.mode == ExecMode::Functional;
        if functional {
            assert_eq!(q.len(), g * nq * d);
            assert_eq!(k.len(), nkv * d);
            assert_eq!(v.len(), nkv * d);
        }

        let mut bd = FlashAttentionBreakdown::default();
        let scale = 1.0 / (d as f64).sqrt();

        // Q load + O store traffic, once per call (part of "QKVO").
        let snap = ctx.cost.snapshot();
        ctx.cost.charge_dma((2 * g * nq * d * 2) as u64);
        FlashAttentionBreakdown::add_delta(&mut bd.load_store, &ctx.cost.delta_since(&snap, ""));

        // Softmax running state per query head and row.
        let mut m = vec![F16::NEG_INFINITY; g * nq];
        let mut l = vec![F16::ZERO; g * nq];
        let mut o = vec![0.0f32; if functional { g * nq * d } else { 0 }];

        let n_blocks = nkv.div_ceil(self.kv_block);
        let run_blocks: usize = if functional { n_blocks } else { 1 };
        let all_snap = ctx.cost.snapshot();
        let mut bd_blocks = FlashAttentionBreakdown::default();

        for b in 0..run_blocks {
            let kv_lo = b * self.kv_block;
            let kv_hi = ((b + 1) * self.kv_block).min(nkv);
            self.process_block(
                ctx,
                shape,
                scale,
                q,
                k,
                v,
                kv_lo,
                kv_hi,
                &mut m,
                &mut l,
                &mut o,
                &mut bd_blocks,
                functional,
                causal_start,
            );
        }
        if !functional && n_blocks > 1 {
            ctx.cost.scale_since(&all_snap, n_blocks as u64);
            bd_blocks.scale(n_blocks as f64);
        }
        FlashAttentionBreakdown::add_delta(&mut bd.load_store, &bd_blocks.load_store);
        FlashAttentionBreakdown::add_delta(&mut bd.matmul, &bd_blocks.matmul);
        FlashAttentionBreakdown::add_delta(&mut bd.softmax, &bd_blocks.softmax);

        // Final normalization O_i = diag(l)^-1 O (charged to softmax).
        let snap = ctx.cost.snapshot();
        let o_regs = (g * nq * d).div_ceil(64) as u64;
        ctx.cost.charge_hvx_packets(o_regs * 2 + (g * nq) as u64);
        let out = if functional {
            let mut out = vec![F16::ZERO; g * nq * d];
            // Chunked O writeback: divide into an f32 scratch row, then
            // round the whole row at once (bit-identical to per-element
            // `from_f32`).
            let mut row_f = vec![0.0f32; d];
            for (row, &lv) in l.iter().enumerate() {
                let denom = lv.to_f32();
                for (p, slot) in row_f.iter_mut().enumerate() {
                    *slot = if denom > 0.0 {
                        o[row * d + p] / denom
                    } else {
                        0.0
                    };
                }
                F16::from_f32_slice(&row_f, &mut out[row * d..(row + 1) * d]);
            }
            out
        } else {
            Vec::new()
        };
        FlashAttentionBreakdown::add_delta(&mut bd.softmax, &ctx.cost.delta_since(&snap, ""));

        (out, bd)
    }

    /// Processes one KV block for every query head in the group, updating
    /// running state and cost buckets.
    #[allow(clippy::too_many_arguments)]
    fn process_block(
        &self,
        ctx: &mut NpuContext,
        shape: AttnShape,
        scale: f64,
        q: &[F16],
        k: &[F16],
        v: &[F16],
        kv_lo: usize,
        kv_hi: usize,
        m: &mut [F16],
        l: &mut [F16],
        o: &mut [f32],
        bd: &mut FlashAttentionBreakdown,
        functional: bool,
        causal_start: Option<usize>,
    ) {
        let AttnShape {
            nq, head_dim: d, ..
        } = shape;
        let g = self.q_heads_per_kv;
        let kv_tiles = self.kv_block.div_ceil(32);
        let d_tiles = d / 32;
        // All query heads of the GQA group attend to the same KV head, so
        // the kernel batches their rows into shared tiles: `g * nq` query
        // rows per block. This is what keeps the Figure 8 matmul share tiny.
        let rows = g * nq;
        let q_row_tiles = rows.div_ceil(32);

        // --- Stage 1: KV streaming (shared across the GQA group). ---
        let snap = ctx.cost.snapshot();
        ctx.cost.charge_dma((2 * self.kv_block * d * 2) as u64);
        FlashAttentionBreakdown::add_delta(&mut bd.load_store, &ctx.cost.delta_since(&snap, ""));

        // --- Stage 2a cost: S = Q K^T on the HMX (FP32 accumulate). ---
        // S writeback flows through the HMX's dedicated converter path
        // (Figure 3), so only tile-ops are charged here.
        let snap = ctx.cost.snapshot();
        ctx.cost
            .charge_hmx_tile_ops((q_row_tiles * kv_tiles * d_tiles) as u64);
        FlashAttentionBreakdown::add_delta(&mut bd.matmul, &ctx.cost.delta_since(&snap, ""));

        // --- Stage 3 cost: softmax update (max, exp, sum, rescale). ---
        let snap = ctx.cost.snapshot();
        let row_pair_regs = rows.div_ceil(2) as u64;
        for _tile in 0..kv_tiles {
            // Per row-pair register: running max (1), subtract+convert (2),
            // FP32 sum accumulate (2), plus the exponential.
            for _reg in 0..row_pair_regs {
                ctx.cost.charge_hvx_packets(5);
                charge_exp(ctx, self.method);
            }
            // m/l running-state update for the tile.
            ctx.cost.charge_hvx_packets(row_pair_regs * 2 + 6);
        }
        // S load + P store traffic for the rows actually occupied.
        ctx.cost
            .charge_tcm_bytes((2 * rows * self.kv_block * 2) as u64);
        // O rescale by diag(exp(m_prev - m_new)) once per block.
        let o_regs = (rows * d).div_ceil(64) as u64;
        ctx.cost.charge_hvx_packets(o_regs * 2);
        charge_exp(ctx, self.method);
        let softmax_snap_end = ctx.cost.delta_since(&snap, "");

        // --- Stage 2b cost: O += P V on the HMX. ---
        let snap_pv = ctx.cost.snapshot();
        ctx.cost
            .charge_hmx_tile_ops((q_row_tiles * kv_tiles * d_tiles) as u64);
        let pv_delta = ctx.cost.delta_since(&snap_pv, "");

        // --- Functional math (charge-free; per query head of the group).
        if functional {
            let cols = kv_hi - kv_lo;
            // Host staging, chunked F16 treatment: convert the group's Q
            // rows and this block's K/V rows to f32 once instead of once
            // per inner-loop visit. `to_f32` is exact and `from_f32_slice`
            // is bitwise RTNE, so every sum below accumulates the same
            // values in the same order — bit-identical to the elementwise
            // loops (pinned by `staged_block_math_is_bit_identical_*`).
            let qf = F16::vec_to_f32(&q[..rows * d]);
            let kf = F16::vec_to_f32(&k[kv_lo * d..kv_hi * d]);
            let vf = F16::vec_to_f32(&v[kv_lo * d..kv_hi * d]);
            let mut s_row = vec![0.0f32; cols];
            let mut p_half = vec![F16::ZERO; cols];
            let mut p_row = vec![0.0f32; cols];
            let mut o_row = vec![0.0f32; d];
            let mut o_half = vec![F16::ZERO; d];
            for gh in 0..g {
                let mut s_block = vec![F16::ZERO; nq * cols];
                for i in 0..nq {
                    for (jj, j) in (kv_lo..kv_hi).enumerate() {
                        // Causal mask: query at absolute position
                        // `start + i` must not see KV positions beyond it.
                        if let Some(start) = causal_start {
                            if j > start + i {
                                s_row[jj] = f32::NEG_INFINITY;
                                continue;
                            }
                        }
                        let mut dot = 0.0f32;
                        for p in 0..d {
                            dot += qf[(gh * nq + i) * d + p] * kf[jj * d + p];
                        }
                        s_row[jj] = dot * scale as f32;
                    }
                    F16::from_f32_slice(&s_row, &mut s_block[i * cols..(i + 1) * cols]);
                }
                for i in 0..nq {
                    let row = gh * nq + i;
                    let mut row_max = m[row];
                    for jj in 0..cols {
                        row_max = row_max.max(s_block[i * cols + jj]);
                    }
                    if row_max == F16::NEG_INFINITY {
                        // Entire row masked so far (prefill rows whose
                        // positions precede this block): state unchanged.
                        continue;
                    }
                    // P = exp(S - m_new), FP16 subtraction like vsub_hf.
                    for (jj, slot) in p_half.iter_mut().enumerate() {
                        let s_val = s_block[i * cols + jj];
                        *slot = if s_val == F16::NEG_INFINITY {
                            F16::ZERO
                        } else {
                            exp_scalar(ctx, self.lut, self.method, s_val.sub(row_max))
                        };
                    }
                    F16::to_f32_slice(&p_half, &mut p_row);
                    let mut rowsum = 0.0f32;
                    for &e in &p_row {
                        rowsum += e;
                    }
                    // Correction factor exp(m_old - m_new) in FP16.
                    let e_dm = exp_scalar(ctx, self.lut, self.method, m[row].sub(row_max));
                    // l update: FP16 state, FP32 accumulate (Algorithm 1).
                    l[row] = F16::from_f32(e_dm.to_f32() * l[row].to_f32() + rowsum);
                    // O rescale, then the PV accumulate (HMX writeback
                    // rounds the combined FP32 update to FP16 once).
                    let e_dm_f = e_dm.to_f32();
                    for (p, slot) in o_row.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for jj in 0..cols {
                            acc += p_row[jj] * vf[jj * d + p];
                        }
                        *slot = o[row * d + p] * e_dm_f + acc;
                    }
                    F16::from_f32_slice(&o_row, &mut o_half);
                    F16::to_f32_slice(&o_half, &mut o[row * d..(row + 1) * d]);
                    m[row] = row_max;
                }
            }
        }
        FlashAttentionBreakdown::add_delta(&mut bd.softmax, &softmax_snap_end);
        FlashAttentionBreakdown::add_delta(&mut bd.matmul, &pv_delta);
    }
}

/// Conventional FP32 attention (no tiling, f32 throughout) — the accuracy
/// baseline of the paper's Table 5. Purely functional.
pub fn attention_f32(
    q: &[F16],
    k: &[F16],
    v: &[F16],
    heads: usize,
    nq: usize,
    nkv: usize,
    d: usize,
) -> Vec<F16> {
    let scale = 1.0f32 / (d as f32).sqrt();
    // Same chunked host staging as the flash kernel: Q/K/V convert once
    // up front (`to_f32` is exact, so every accumulation below is
    // bit-identical to converting inside the inner loops).
    let qf = F16::vec_to_f32(q);
    let kf = F16::vec_to_f32(k);
    let vf = F16::vec_to_f32(v);
    let mut out = vec![F16::ZERO; heads * nq * d];
    let mut o_row = vec![0.0f32; d];
    for h in 0..heads {
        for i in 0..nq {
            let mut s = vec![0.0f32; nkv];
            for (j, sj) in s.iter_mut().enumerate() {
                let mut dot = 0.0f32;
                for p in 0..d {
                    dot += qf[(h * nq + i) * d + p] * kf[j * d + p];
                }
                *sj = dot * scale;
            }
            let mx = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in s.iter_mut() {
                *x = (*x - mx).exp();
                sum += *x;
            }
            for (p, slot) in o_row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (j, &w) in s.iter().enumerate() {
                    acc += w / sum * vf[j * d + p];
                }
                *slot = acc;
            }
            let lo = (h * nq + i) * d;
            F16::from_f32_slice(&o_row, &mut out[lo..lo + d]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{attention_ref_f64, rmse};

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
    }

    fn rand_f16(n: usize, seed: u64, scale: f32) -> Vec<F16> {
        (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(seed.wrapping_add(12345)) % 1000) as f32;
                F16::from_f32((x / 500.0 - 1.0) * scale)
            })
            .collect()
    }

    fn to_f32(v: &[F16]) -> Vec<f32> {
        v.iter().map(|x| x.to_f32()).collect()
    }

    /// The flash kernel's functional math with per-element conversions in
    /// every inner loop — the shape the code had before the chunked-F16
    /// staging. The kernel must reproduce this bit-for-bit: staging only
    /// hoists exact `to_f32` conversions and batches the RTNE roundings.
    #[allow(clippy::too_many_arguments)]
    fn flash_elementwise_ref(
        ctx: &mut NpuContext,
        lut: &ExpLut16,
        method: ExpMethod,
        kv_block: usize,
        g: usize,
        shape: AttnShape,
        q: &[F16],
        k: &[F16],
        v: &[F16],
        causal_start: Option<usize>,
    ) -> Vec<F16> {
        let AttnShape {
            nq,
            nkv,
            head_dim: d,
        } = shape;
        let scale = 1.0 / (d as f64).sqrt();
        let mut m = vec![F16::NEG_INFINITY; g * nq];
        let mut l = vec![F16::ZERO; g * nq];
        let mut o = vec![0.0f32; g * nq * d];
        for b in 0..nkv.div_ceil(kv_block) {
            let kv_lo = b * kv_block;
            let kv_hi = ((b + 1) * kv_block).min(nkv);
            let cols = kv_hi - kv_lo;
            for gh in 0..g {
                let mut s_block = vec![F16::ZERO; nq * cols];
                for i in 0..nq {
                    for (jj, j) in (kv_lo..kv_hi).enumerate() {
                        if let Some(start) = causal_start {
                            if j > start + i {
                                s_block[i * cols + jj] = F16::NEG_INFINITY;
                                continue;
                            }
                        }
                        let mut dot = 0.0f32;
                        for p in 0..d {
                            dot += q[(gh * nq + i) * d + p].to_f32() * k[j * d + p].to_f32();
                        }
                        s_block[i * cols + jj] = F16::from_f32(dot * scale as f32);
                    }
                }
                let mut p_block = vec![F16::ZERO; nq * cols];
                for i in 0..nq {
                    let row = gh * nq + i;
                    let mut row_max = m[row];
                    for jj in 0..cols {
                        row_max = row_max.max(s_block[i * cols + jj]);
                    }
                    if row_max == F16::NEG_INFINITY {
                        continue;
                    }
                    let mut rowsum = 0.0f32;
                    for jj in 0..cols {
                        let s_val = s_block[i * cols + jj];
                        let e = if s_val == F16::NEG_INFINITY {
                            F16::ZERO
                        } else {
                            exp_scalar(ctx, lut, method, s_val.sub(row_max))
                        };
                        p_block[i * cols + jj] = e;
                        rowsum += e.to_f32();
                    }
                    let e_dm = exp_scalar(ctx, lut, method, m[row].sub(row_max));
                    l[row] = F16::from_f32(e_dm.to_f32() * l[row].to_f32() + rowsum);
                    for p in 0..d {
                        let mut acc = 0.0f32;
                        for jj in 0..cols {
                            acc +=
                                p_block[i * cols + jj].to_f32() * v[(kv_lo + jj) * d + p].to_f32();
                        }
                        let updated = o[row * d + p] * e_dm.to_f32() + acc;
                        o[row * d + p] = F16::from_f32(updated).to_f32();
                    }
                    m[row] = row_max;
                }
            }
        }
        let mut out = vec![F16::ZERO; g * nq * d];
        for (row, &lv) in l.iter().enumerate() {
            let denom = lv.to_f32();
            for p in 0..d {
                let val = if denom > 0.0 {
                    o[row * d + p] / denom
                } else {
                    0.0
                };
                out[row * d + p] = F16::from_f32(val);
            }
        }
        out
    }

    #[test]
    fn staged_block_math_is_bit_identical_to_elementwise() {
        // Differential sweep over GQA group sizes, multi-block and
        // partial-tail KV lengths, causal masks with fully-masked rows,
        // value ranges that round to infinities, and all three exp
        // methods: the staged kernel must match the per-element reference
        // bit-for-bit everywhere.
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        // (g, nq, nkv, d, causal_start, seed, amp)
        type Case = (usize, usize, usize, usize, Option<usize>, u64, f32);
        let cases: &[Case] = &[
            (1, 4, 160, 64, None, 3, 1.0),
            (2, 3, 100, 32, None, 5, 1.0),
            (6, 2, 300, 64, None, 9, 1.0),
            (1, 8, 256, 128, Some(248), 11, 1.0),
            (2, 5, 130, 32, Some(125), 13, 1.0),
            (1, 1, 1, 32, Some(0), 17, 1.0),
            (2, 4, 200, 64, None, 19, 16.0),
            (1, 6, 140, 32, Some(134), 23, 16.0),
        ];
        for &(g, nq, nkv, d, causal, seed, amp) in cases {
            for method in [ExpMethod::F32Poly, ExpMethod::F16Poly, ExpMethod::Lut16] {
                let shape = AttnShape {
                    nq,
                    nkv,
                    head_dim: d,
                };
                let q = rand_f16(g * nq * d, seed, amp);
                let k = rand_f16(nkv * d, seed ^ 0xA5, amp);
                let v = rand_f16(nkv * d, seed ^ 0x5A, amp);
                let fa = FlashAttention {
                    lut: &lut,
                    method,
                    kv_block: 128,
                    q_heads_per_kv: g,
                };
                let (out, _) = fa.run_with_mask(&mut c, shape, &q, &k, &v, causal);
                let reference =
                    flash_elementwise_ref(&mut c, &lut, method, 128, g, shape, &q, &k, &v, causal);
                assert_eq!(out.len(), reference.len());
                for (idx, (a, b)) in out.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        a.0, b.0,
                        "element {idx}: g={g} nq={nq} nkv={nkv} d={d} \
                         causal={causal:?} amp={amp} {method:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn staged_attention_f32_is_bit_identical_to_elementwise() {
        // Same check for the Table 5 accuracy baseline: staging Q/K/V and
        // batching the output rounding must not move a single bit.
        let elementwise =
            |q: &[F16], k: &[F16], v: &[F16], heads: usize, nq: usize, nkv: usize, d: usize| {
                let scale = 1.0f32 / (d as f32).sqrt();
                let mut out = vec![F16::ZERO; heads * nq * d];
                for h in 0..heads {
                    for i in 0..nq {
                        let mut s = vec![0.0f32; nkv];
                        for (j, sj) in s.iter_mut().enumerate() {
                            let mut dot = 0.0f32;
                            for p in 0..d {
                                dot += q[(h * nq + i) * d + p].to_f32() * k[j * d + p].to_f32();
                            }
                            *sj = dot * scale;
                        }
                        let mx = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                        let mut sum = 0.0f32;
                        for x in s.iter_mut() {
                            *x = (*x - mx).exp();
                            sum += *x;
                        }
                        for p in 0..d {
                            let mut acc = 0.0f32;
                            for (j, &w) in s.iter().enumerate() {
                                acc += w / sum * v[j * d + p].to_f32();
                            }
                            out[(h * nq + i) * d + p] = F16::from_f32(acc);
                        }
                    }
                }
                out
            };
        for &(heads, nq, nkv, d, seed, amp) in &[
            (1usize, 4usize, 96usize, 64usize, 3u64, 1.0f32),
            (2, 3, 100, 32, 7, 1.0),
            (4, 2, 33, 64, 11, 16.0),
        ] {
            let q = rand_f16(heads * nq * d, seed, amp);
            let k = rand_f16(nkv * d, seed ^ 0xA5, amp);
            let v = rand_f16(nkv * d, seed ^ 0x5A, amp);
            let staged = attention_f32(&q, &k, &v, heads, nq, nkv, d);
            let reference = elementwise(&q, &k, &v, heads, nq, nkv, d);
            for (idx, (a, b)) in staged.iter().zip(&reference).enumerate() {
                assert_eq!(
                    a.0, b.0,
                    "element {idx}: heads={heads} nq={nq} nkv={nkv} d={d}"
                );
            }
        }
    }

    #[test]
    fn flash_attention_matches_f64_reference() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let shape = AttnShape {
            nq: 4,
            nkv: 160,
            head_dim: 64,
        };
        let q = rand_f16(4 * 64, 3, 1.0);
        let k = rand_f16(160 * 64, 7, 1.0);
        let v = rand_f16(160 * 64, 11, 1.0);
        let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 1);
        let (out, _) = fa.run(&mut c, shape, &q, &k, &v);
        let reference =
            attention_ref_f64(&to_f32(&q), &to_f32(&k), &to_f32(&v), 4, 160, 64, 1.0 / 8.0);
        let err = rmse(&to_f32(&out), &reference);
        assert!(err < 5e-3, "rmse {err}");
    }

    #[test]
    fn partial_final_block_is_handled() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        // nkv = 100 is not a multiple of the 128-long KV block.
        let shape = AttnShape {
            nq: 2,
            nkv: 100,
            head_dim: 32,
        };
        let q = rand_f16(2 * 32, 5, 1.0);
        let k = rand_f16(100 * 32, 6, 1.0);
        let v = rand_f16(100 * 32, 8, 1.0);
        let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 1);
        let (out, _) = fa.run(&mut c, shape, &q, &k, &v);
        let reference = attention_ref_f64(
            &to_f32(&q),
            &to_f32(&k),
            &to_f32(&v),
            2,
            100,
            32,
            1.0 / (32.0f64).sqrt(),
        );
        assert!(rmse(&to_f32(&out), &reference) < 5e-3);
    }

    #[test]
    fn lut_fa_matches_f32_attention_closely() {
        // Table 5's claim: FP16 FA with LUT softmax ~= conventional F32
        // attention at the model level. At the kernel level their outputs
        // must agree to FP16 resolution.
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let shape = AttnShape {
            nq: 3,
            nkv: 96,
            head_dim: 64,
        };
        let q = rand_f16(2 * 3 * 64, 4, 1.0);
        let k = rand_f16(96 * 64, 9, 1.0);
        let v = rand_f16(96 * 64, 10, 1.0);
        let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 2);
        let (out_fa, _) = fa.run(&mut c, shape, &q, &k, &v);
        let out_f32 = attention_f32(&q, &k, &v, 2, 3, 96, 64);
        let max_diff = out_fa
            .iter()
            .zip(&out_f32)
            .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 8e-3, "max diff {max_diff}");
    }

    #[test]
    fn breakdown_shifts_to_softmax_with_batch_figure8() {
        // Figure 8: at prompt 4096 with GQA group 6 (Qwen2.5-1.5B), the
        // load/store share falls and the softmax share rises as q grows.
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let lut = ExpLut16::build(&mut c).unwrap();
        let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 6);
        let share = |c: &mut NpuContext, nq: usize| {
            let shape = AttnShape {
                nq,
                nkv: 4096,
                head_dim: 128,
            };
            let (_, bd) = fa.run(c, shape, &[], &[], &[]);
            bd.shares()
        };
        let s4 = share(&mut c, 4);
        let s32 = share(&mut c, 32);
        // Load/store is a major share at q=4 (paper: 58.3%) and fades by
        // q=32 (paper: 11.3%).
        assert!(s4[0] > 30.0, "q=4 load share {}", s4[0]);
        assert!(s32[0] < 15.0, "q=32 load share {}", s32[0]);
        assert!(s32[0] < s4[0]);
        // Softmax dominates at q=32 (paper: 84.6%).
        assert!(s32[2] > 75.0, "q=32 softmax share {}", s32[2]);
        assert!(s4[2] < s32[2]);
        // MatMul is the smallest contributor throughout (paper: "matrix
        // multiplication contributes little", ~4%).
        assert!(s4[1] < s4[0] && s4[1] < 15.0, "q=4 matmul share {}", s4[1]);
        assert!(s32[1] < s32[2] && s32[1] < 15.0);
    }

    #[test]
    fn causal_prefill_matches_reference() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        // 6 new tokens starting at position 2 of an 8-token KV cache.
        let shape = AttnShape {
            nq: 6,
            nkv: 8,
            head_dim: 32,
        };
        let q = rand_f16(6 * 32, 13, 1.0);
        let k = rand_f16(8 * 32, 14, 1.0);
        let v = rand_f16(8 * 32, 15, 1.0);
        let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 1);
        let (out, _) = fa.run_causal(&mut c, shape, &q, &k, &v, 2);
        let reference = crate::reference::attention_causal_ref_f64(
            &to_f32(&q),
            &to_f32(&k),
            &to_f32(&v),
            6,
            8,
            32,
            1.0 / (32.0f64).sqrt(),
            2,
        );
        assert!(rmse(&to_f32(&out), &reference) < 6e-3);
    }

    #[test]
    fn cost_only_and_functional_agree_on_totals() {
        let shape = AttnShape {
            nq: 4,
            nkv: 256,
            head_dim: 64,
        };
        let run = |mode| {
            let mut c = NpuContext::new(DeviceProfile::v75(), mode);
            let lut = ExpLut16::build(&mut c).unwrap();
            let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 2);
            let (q, k, v) = if mode == ExecMode::Functional {
                (
                    rand_f16(2 * 4 * 64, 1, 1.0),
                    rand_f16(256 * 64, 2, 1.0),
                    rand_f16(256 * 64, 3, 1.0),
                )
            } else {
                (vec![], vec![], vec![])
            };
            let (_, bd) = fa.run(&mut c, shape, &q, &k, &v);
            bd.total_wall()
        };
        let wf = run(ExecMode::Functional);
        let wc = run(ExecMode::CostOnly);
        assert!(
            (wf - wc).abs() / wf < 1e-9,
            "functional {wf} vs cost-only {wc}"
        );
    }

    #[test]
    fn longer_context_costs_proportionally_more() {
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let lut = ExpLut16::build(&mut c).unwrap();
        let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 4);
        let t = |c: &mut NpuContext, nkv: usize| {
            let shape = AttnShape {
                nq: 8,
                nkv,
                head_dim: 128,
            };
            fa.run(c, shape, &[], &[], &[]).1.total_wall()
        };
        let t1k = t(&mut c, 1024);
        let t4k = t(&mut c, 4096);
        let ratio = t4k / t1k;
        assert!((3.5..4.5).contains(&ratio), "context scaling {ratio}");
    }
}
