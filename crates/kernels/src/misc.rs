//! Miscellaneous transformer vector kernels: RMSNorm, RoPE, SiLU, add.
//!
//! The paper classifies these as minor contributors ("we neglect their
//! impacts due to their small computation and memory access volumes",
//! Section 5.2.1) but the end-to-end pipeline still executes and charges
//! them, so their smallness is a measured property rather than an
//! assumption.

use hexsim::f16::F16;
use hexsim::prelude::*;

/// RMS normalization of a length-`n` FP16 row: `y = x / rms(x) * w`.
///
/// FP32 accumulation for the sum of squares (one widen + two FMA-ish ops
/// per register), scalar rsqrt, then an FP16 scale pass.
pub fn rmsnorm(ctx: &mut NpuContext, x: &mut [F16], w: &[F16], eps: f32) {
    assert_eq!(x.len(), w.len());
    let n = x.len();
    let regs = n.div_ceil(64) as u64;
    // Pass 1: sum of squares in FP32.
    ctx.cost.charge_tcm_bytes(regs * 128);
    ctx.cost.charge_hvx_packets(regs * 3 + 12 + 6);
    let mut ss = 0.0f32;
    for v in x.iter() {
        let f = v.to_f32();
        ss += f * f;
    }
    let inv_rms = 1.0 / (ss / n as f32 + eps).sqrt();
    // Pass 2: scale by inv_rms and the elementwise weight.
    let qf = 2 * ctx.device().qf16_convert_ops();
    ctx.cost.charge_tcm_bytes(regs * 256);
    ctx.cost.charge_hvx_packets(regs * (2 + qf) + 1);
    for (xi, wi) in x.iter_mut().zip(w) {
        let scaled = F16::from_f32(xi.to_f32() * inv_rms);
        *xi = scaled.mul(*wi);
    }
}

/// Rotary position embedding applied in place to one head vector
/// (`head_dim` FP16 values, rotated in half-split pairs) for position
/// `pos`.
pub fn rope(ctx: &mut NpuContext, x: &mut [F16], pos: usize, theta_base: f32) {
    let d = x.len();
    assert_eq!(d % 2, 0);
    let half = d / 2;
    let regs = d.div_ceil(64).max(1) as u64;
    // cos/sin table loads + 4 multiplies and 2 adds per register pair.
    let qf = 2 * ctx.device().qf16_convert_ops();
    ctx.cost.charge_tcm_bytes(regs * 256);
    ctx.cost.charge_hvx_packets(regs * (6 + qf));
    for i in 0..half {
        let freq = theta_base.powf(-2.0 * (i as f32) / d as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = x[i].to_f32();
        let b = x[i + half].to_f32();
        x[i] = F16::from_f32(a * cos - b * sin);
        x[i + half] = F16::from_f32(a * sin + b * cos);
    }
}

/// SiLU activation `x * sigmoid(x)` applied in place (gate path of SwiGLU).
///
/// Modeled as a 12-instruction polynomial with a short dependency stall;
/// functional values use libm through f32 (the hardware approximation error
/// is below FP16 resolution).
pub fn silu(ctx: &mut NpuContext, x: &mut [F16]) {
    let regs = x.len().div_ceil(64) as u64;
    ctx.cost.charge_tcm_bytes(regs * 256);
    ctx.cost.charge_hvx_packets(regs * 12);
    ctx.stall(4);
    for v in x.iter_mut() {
        let f = v.to_f32();
        *v = F16::from_f32(f / (1.0 + (-f).exp()));
    }
}

/// Elementwise FP16 multiply (SwiGLU gate application), in place on `a`.
pub fn mul_inplace(ctx: &mut NpuContext, a: &mut [F16], b: &[F16]) {
    assert_eq!(a.len(), b.len());
    let regs = a.len().div_ceil(64) as u64;
    let qf = ctx.device().qf16_convert_ops();
    ctx.cost.charge_tcm_bytes(regs * 384);
    ctx.cost.charge_hvx_packets(regs * (1 + qf));
    for (x, y) in a.iter_mut().zip(b) {
        *x = x.mul(*y);
    }
}

/// Residual addition `a += b` in FP16.
pub fn add_inplace(ctx: &mut NpuContext, a: &mut [F16], b: &[F16]) {
    assert_eq!(a.len(), b.len());
    let regs = a.len().div_ceil(64) as u64;
    let qf = ctx.device().qf16_convert_ops();
    ctx.cost.charge_tcm_bytes(regs * 384);
    ctx.cost.charge_hvx_packets(regs * (1 + qf));
    for (x, y) in a.iter_mut().zip(b) {
        *x = x.add(*y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
    }

    fn vecf(vals: &[f32]) -> Vec<F16> {
        vals.iter().map(|&v| F16::from_f32(v)).collect()
    }

    #[test]
    fn rmsnorm_produces_unit_rms() {
        let mut c = ctx();
        let mut x = vecf(&[1.0, -2.0, 3.0, -4.0, 2.0, 0.5, -1.5, 2.5]);
        let w = vec![F16::ONE; 8];
        rmsnorm(&mut c, &mut x, &w, 1e-6);
        let ss: f32 = x.iter().map(|v| v.to_f32() * v.to_f32()).sum();
        let rms = (ss / 8.0).sqrt();
        assert!((rms - 1.0).abs() < 0.01, "rms {rms}");
    }

    #[test]
    fn rmsnorm_applies_weights() {
        let mut c = ctx();
        let mut x = vecf(&[2.0, 2.0]);
        let w = vecf(&[1.0, 0.5]);
        rmsnorm(&mut c, &mut x, &w, 1e-6);
        let ratio = x[0].to_f32() / x[1].to_f32();
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn rope_preserves_pair_norm() {
        let mut c = ctx();
        let mut x = vecf(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let orig = x.clone();
        rope(&mut c, &mut x, 17, 10000.0);
        // Rotation preserves the norm of each (i, i+half) pair.
        for i in 0..4 {
            let n0 = orig[i].to_f32().hypot(orig[i + 4].to_f32());
            let n1 = x[i].to_f32().hypot(x[i + 4].to_f32());
            assert!((n0 - n1).abs() < 0.02, "pair {i}: {n0} vs {n1}");
        }
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let mut c = ctx();
        let mut x = vecf(&[1.0, 2.0, 3.0, 4.0]);
        let orig = x.clone();
        rope(&mut c, &mut x, 0, 10000.0);
        assert_eq!(x, orig);
    }

    #[test]
    fn silu_known_values() {
        let mut c = ctx();
        let mut x = vecf(&[0.0, 1.0, -1.0, 4.0]);
        silu(&mut c, &mut x);
        assert_eq!(x[0].to_f32(), 0.0);
        assert!((x[1].to_f32() - 0.7311).abs() < 0.001);
        assert!((x[2].to_f32() - -0.2689).abs() < 0.001);
        // Large positive saturates toward identity.
        assert!((x[3].to_f32() - 3.928).abs() < 0.01);
    }

    #[test]
    fn add_and_mul_inplace() {
        let mut c = ctx();
        let mut a = vecf(&[1.0, 2.0, 3.0]);
        add_inplace(&mut c, &mut a, &vecf(&[0.5, 0.5, 0.5]));
        assert_eq!(a[2].to_f32(), 3.5);
        mul_inplace(&mut c, &mut a, &vecf(&[2.0, 2.0, 2.0]));
        assert_eq!(a[0].to_f32(), 3.0);
    }

    #[test]
    fn costs_scale_with_length() {
        let mut c = ctx();
        let mut small = vec![F16::ONE; 64];
        silu(&mut c, &mut small);
        let t1 = c.cost.engine_secs(hexsim::cost::Engine::Hvx);
        let mut big = vec![F16::ONE; 640];
        silu(&mut c, &mut big);
        let t2 = c.cost.engine_secs(hexsim::cost::Engine::Hvx) - t1;
        assert!(t2 > t1 * 5.0, "10x data should cost >5x");
    }
}
