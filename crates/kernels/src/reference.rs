//! High-precision reference implementations for kernel verification.
//!
//! Everything here is plain f32/f64 math with no simulator involvement;
//! tests compare kernel outputs against these to bound numeric error (the
//! evidence behind the paper's Table 5: FP16 FlashAttention with LUT
//! softmax matches FP32 attention).

/// Softmax of one row in f64.
pub fn softmax_ref_f64(row: &[f32]) -> Vec<f64> {
    let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let exps: Vec<f64> = row.iter().map(|&x| ((x as f64) - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Dense GEMM in f32: `C[m, n] = A[m, k] x B[k, n]` (row-major).
///
/// # Panics
///
/// Panics if slice lengths do not match the shapes.
pub fn gemm_ref_f32(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += av * b[p * n + j];
            }
        }
    }
    c
}

/// Scaled-dot-product attention in f64: causal masking is *not* applied
/// (the paper's decode-phase attention attends to the whole KV cache).
///
/// `q`: `[nq, d]`, `k`/`v`: `[nkv, d]`, all row-major; returns `[nq, d]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the shapes.
pub fn attention_ref_f64(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    nq: usize,
    nkv: usize,
    d: usize,
    scale: f64,
) -> Vec<f64> {
    assert_eq!(q.len(), nq * d);
    assert_eq!(k.len(), nkv * d);
    assert_eq!(v.len(), nkv * d);
    let mut out = vec![0.0f64; nq * d];
    for i in 0..nq {
        // Scores.
        let mut s = vec![0.0f64; nkv];
        for j in 0..nkv {
            let mut dot = 0.0f64;
            for p in 0..d {
                dot += q[i * d + p] as f64 * k[j * d + p] as f64;
            }
            s[j] = dot * scale;
        }
        // Softmax.
        let m = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0f64;
        for x in s.iter_mut() {
            *x = (*x - m).exp();
            sum += *x;
        }
        // Weighted value sum.
        for j in 0..nkv {
            let w = s[j] / sum;
            for p in 0..d {
                out[i * d + p] += w * v[j * d + p] as f64;
            }
        }
    }
    out
}

/// Causal scaled-dot-product attention in f64: query `i` (at absolute
/// position `q_start + i`) attends to KV positions `<= q_start + i`.
///
/// # Panics
///
/// Panics if slice lengths do not match the shapes.
#[allow(clippy::too_many_arguments)]
pub fn attention_causal_ref_f64(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    nq: usize,
    nkv: usize,
    d: usize,
    scale: f64,
    q_start: usize,
) -> Vec<f64> {
    assert_eq!(q.len(), nq * d);
    assert_eq!(k.len(), nkv * d);
    assert_eq!(v.len(), nkv * d);
    let mut out = vec![0.0f64; nq * d];
    for i in 0..nq {
        let limit = (q_start + i + 1).min(nkv);
        let mut s = vec![0.0f64; limit];
        for (j, sj) in s.iter_mut().enumerate() {
            let mut dot = 0.0f64;
            for p in 0..d {
                dot += q[i * d + p] as f64 * k[j * d + p] as f64;
            }
            *sj = dot * scale;
        }
        let m = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0f64;
        for x in s.iter_mut() {
            *x = (*x - m).exp();
            sum += *x;
        }
        for (j, &w) in s.iter().enumerate() {
            for p in 0..d {
                out[i * d + p] += w / sum * v[j * d + p] as f64;
            }
        }
    }
    out
}

/// Root-mean-square error between two vectors (f64 accumulate).
pub fn rmse(a: &[f32], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let se: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64 - y) * (x as f64 - y))
        .sum();
    (se / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_ref_normalizes() {
        let out = softmax_ref_f64(&[1.0, 2.0, 3.0]);
        let s: f64 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(out[2] > out[1] && out[1] > out[0]);
    }

    #[test]
    fn gemm_ref_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2.
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(gemm_ref_f32(&a, &eye, 2, 2, 2), a);
    }

    #[test]
    fn attention_ref_uniform_weights() {
        // Q orthogonal to K -> all scores zero -> output = mean of V rows.
        let q = vec![0.0f32; 4];
        let k = vec![1.0f32; 8]; // 2 x 4.
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let out = attention_ref_f64(&q, &k, &v, 1, 2, 4, 1.0);
        assert_eq!(out, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn rmse_zero_for_equal() {
        let a = vec![1.0f32, 2.0];
        let b = vec![1.0f64, 2.0];
        assert_eq!(rmse(&a, &b), 0.0);
    }
}
