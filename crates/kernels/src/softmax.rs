//! Safe-softmax row kernels parameterized by exponential method — the
//! subject of the paper's Figure 14 ablation.
//!
//! The kernel processes a `[rows, cols]` FP16 matrix resident in TCM (an
//! attention-score workload: `rows = Nq`, `cols = Nkv`) in three streaming
//! passes per row: (1) running max, (2) subtract-exp-accumulate with FP32
//! sum accumulation (paper Algorithm 1 upcasts rowsum to 32-bit), (3)
//! normalize by the reciprocal. Only pass 2's exponential differs between
//! methods, which is why measured speedups (1.26-2.19x for LUT vs F32) are
//! smaller than the raw per-register exp ratios — the surrounding passes
//! dilute them, more so for short rows.

use hexsim::f16::F16;
use hexsim::hvx::{HVX_BYTES, HVX_HALVES};
use hexsim::prelude::*;

use crate::exp_lut::{exp_vec, ExpLut16, ExpMethod};

/// Softmax workload shape.
#[derive(Clone, Copy, Debug)]
pub struct SoftmaxConfig {
    /// Number of rows (attention query length `Nq`).
    pub rows: usize,
    /// Row length (attention KV length `Nkv`); must be a multiple of 64.
    pub cols: usize,
    /// Exponential implementation.
    pub method: ExpMethod,
}

/// Runs safe softmax in place over a TCM-resident `[rows, cols]` FP16
/// matrix and returns the phase cost.
///
/// # Panics
///
/// Panics if `cols` is not a multiple of 64 (one vector register of FP16).
pub fn softmax_rows(
    ctx: &mut NpuContext,
    lut: &ExpLut16,
    cfg: SoftmaxConfig,
    data: TcmAddr,
) -> PhaseCost {
    assert_eq!(cfg.cols % HVX_HALVES, 0, "cols must be a multiple of 64");
    let regs_per_row = cfg.cols / HVX_HALVES;
    let row_bytes = (cfg.cols * 2) as u32;
    let (_, phase) = ctx.phase(cfg.method.label(), |ctx| {
        ctx.replay_indexed(cfg.rows as u64, |ctx, r| {
            let row = data.offset(r as u32 * row_bytes);

            // Pass 1: running row max.
            let mut max_reg = ctx.vmem_ld_tcm(row);
            for i in 1..regs_per_row {
                let v = ctx.vmem_ld_tcm(row.offset((i * HVX_BYTES) as u32));
                max_reg = ctx.vmax_hf(&max_reg, &v);
            }
            // Horizontal max: log-tree of shuffles and maxes (modeled as 12
            // packets; exact value computed lane-side).
            ctx.cost.charge_hvx_packets(12);
            let m = max_reg
                .to_hf_vec()
                .into_iter()
                .fold(F16::NEG_INFINITY, |a, b| a.max(b));
            let m_splat = ctx.vsplat_hf(m);

            // Pass 2: exp(x - m), FP32 sum accumulation.
            let mut sum = 0.0f64;
            let mut lanes = [F16::ZERO; HVX_HALVES];
            let mut lanes_f32 = [0.0f32; HVX_HALVES];
            for i in 0..regs_per_row {
                let addr = row.offset((i * HVX_BYTES) as u32);
                let v = ctx.vmem_ld_tcm(addr);
                let shifted = ctx.vsub_hf(&v, &m_splat);
                let shifted = ctx.vconv_qf16(shifted);
                let e = exp_vec(ctx, lut, cfg.method, &shifted);
                // FP32 accumulation of the row sum (widen + two adds).
                let (_lo, _hi) = ctx.vcvt_hf_sf(&e);
                ctx.cost.charge_hvx_packets(2);
                // Host-side sum: chunked lane conversion (bit-identical to
                // per-lane `to_f32`), then accumulate in lane order.
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    *slot = e.get_hf(lane);
                }
                F16::to_f32_slice(&lanes, &mut lanes_f32);
                for &x in &lanes_f32 {
                    sum += x as f64;
                }
                ctx.vmem_st_tcm(addr, &e);
            }
            // Horizontal FP32 sum (12 packets) + scalar reciprocal (4).
            ctx.cost.charge_hvx_packets(16);
            let inv = if sum > 0.0 { 1.0 / sum } else { 0.0 };
            let inv_splat = ctx.vsplat_hf(F16::from_f64(inv));

            // Pass 3: normalize.
            for i in 0..regs_per_row {
                let addr = row.offset((i * HVX_BYTES) as u32);
                let e = ctx.vmem_ld_tcm(addr);
                let n = ctx.vmpy_hf(&e, &inv_splat);
                let n = ctx.vconv_qf16(n);
                ctx.vmem_st_tcm(addr, &n);
            }
        });
    });
    phase
}

/// Convenience: stages a `[rows, cols]` f32 matrix into TCM as FP16,
/// runs softmax, and reads the result back (functional mode only).
///
/// Returns `(result_rows, cost)`.
///
/// # Panics
///
/// Panics if the TCM allocation fails or shapes mismatch.
pub fn softmax_host(
    ctx: &mut NpuContext,
    lut: &ExpLut16,
    cfg: SoftmaxConfig,
    input: &[f32],
) -> (Vec<f32>, PhaseCost) {
    assert_eq!(input.len(), cfg.rows * cfg.cols);
    let mark = ctx.tcm_mark();
    let data = ctx
        .tcm_alloc((cfg.rows * cfg.cols * 2) as u32, 128)
        .expect("softmax workload must fit in TCM");
    // Chunked staging/readback (bit-identical to per-element from_f32 /
    // to_f32): the row matrix is the largest host-touched buffer on the
    // attention path, so it gets the same treatment as the lm_head slices.
    let halves = F16::vec_from_f32(input);
    let mut bytes = vec![0u8; cfg.rows * cfg.cols * 2];
    for (b, h) in bytes.chunks_exact_mut(2).zip(&halves) {
        b.copy_from_slice(&h.0.to_le_bytes());
    }
    ctx.tcm_poke(data, &bytes);
    let cost = softmax_rows(ctx, lut, cfg, data);
    let out_bytes = ctx.tcm_peek(data, cfg.rows * cfg.cols * 2).to_vec();
    let out_halves: Vec<F16> = out_bytes
        .chunks_exact(2)
        .map(|b| F16(u16::from_le_bytes([b[0], b[1]])))
        .collect();
    let out = F16::vec_to_f32(&out_halves);
    ctx.tcm_release(mark);
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::softmax_ref_f64;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
    }

    fn workload(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| (((i as u64).wrapping_mul(seed + 7) % 97) as f32) / 10.0 - 4.8)
            .collect()
    }

    #[test]
    fn lut_softmax_matches_reference() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let cfg = SoftmaxConfig {
            rows: 4,
            cols: 128,
            method: ExpMethod::Lut16,
        };
        let input = workload(4, 128, 3);
        let (got, _) = softmax_host(&mut c, &lut, cfg, &input);
        for r in 0..4 {
            let expect = softmax_ref_f64(&input[r * 128..(r + 1) * 128]);
            for i in 0..128 {
                assert!(
                    (got[r * 128 + i] - expect[i] as f32).abs() < 2e-3,
                    "row {r} col {i}: {} vs {}",
                    got[r * 128 + i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn rows_sum_to_one_all_methods() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        for method in [ExpMethod::F32Poly, ExpMethod::F16Poly, ExpMethod::Lut16] {
            let cfg = SoftmaxConfig {
                rows: 2,
                cols: 192,
                method,
            };
            let input = workload(2, 192, 11);
            let (got, _) = softmax_host(&mut c, &lut, cfg, &input);
            for r in 0..2 {
                let s: f32 = got[r * 192..(r + 1) * 192].iter().sum();
                assert!((s - 1.0).abs() < 0.02, "{method:?} row {r} sums to {s}");
            }
        }
    }

    #[test]
    fn speedups_in_paper_range() {
        // Figure 14: LUT16 is 1.26-2.19x faster than F32 exp and up to
        // 1.60x faster than F16 exp, across Nkv in {1K,4K,16K}, Nq in
        // {1,4,16}. Use cost-only mode for the big shapes.
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let lut = ExpLut16::build(&mut c).unwrap();
        let data = c.tcm_alloc(64 * 1024, 128).unwrap(); // Shape-level only.
        for &(nq, nkv) in &[(1usize, 1024usize), (4, 4096), (16, 16384)] {
            let time = |c: &mut NpuContext, method| {
                let cfg = SoftmaxConfig {
                    rows: nq,
                    cols: nkv,
                    method,
                };
                softmax_rows(c, &lut, cfg, data).wall_secs
            };
            let t32 = time(&mut c, ExpMethod::F32Poly);
            let t16 = time(&mut c, ExpMethod::F16Poly);
            let tlut = time(&mut c, ExpMethod::Lut16);
            let s32 = t32 / tlut;
            let s16 = t16 / tlut;
            assert!(
                (1.2..2.3).contains(&s32),
                "Nq={nq} Nkv={nkv}: f32 speedup {s32}"
            );
            assert!(
                (1.0..1.7).contains(&s16),
                "Nq={nq} Nkv={nkv}: f16 speedup {s16}"
            );
        }
    }

    #[test]
    fn latency_scales_with_elements() {
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let lut = ExpLut16::build(&mut c).unwrap();
        let data = c.tcm_alloc(64 * 1024, 128).unwrap();
        let t = |c: &mut NpuContext, rows, cols| {
            softmax_rows(
                c,
                &lut,
                SoftmaxConfig {
                    rows,
                    cols,
                    method: ExpMethod::Lut16,
                },
                data,
            )
            .wall_secs
        };
        let t1 = t(&mut c, 1, 1024);
        let t4 = t(&mut c, 4, 1024);
        let t16k = t(&mut c, 1, 16384);
        assert!((t4 / t1 - 4.0).abs() < 0.2, "row scaling {}", t4 / t1);
        assert!(t16k / t1 > 12.0, "col scaling {}", t16k / t1);
    }

    #[test]
    fn lane_sum_is_bit_identical_across_all_f16_patterns() {
        // Pass 2's host-side row sum now converts lanes through the
        // chunked slice converter. Exhaustively pack every one of the
        // 65536 f16 bit patterns (including NaNs, infinities and
        // subnormals) into vectors and check the chunked sum reproduces
        // the per-lane `get_hf().to_f32()` sum bit-for-bit. The one block
        // whose sum is NaN is compared as NaN-ness only: which input
        // NaN's payload survives a chain of additions depends on the
        // operand order the compiler emits, which IEEE 754 leaves
        // unspecified and codegen is free to flip between the two loops.
        use hexsim::hvx::HvxVec;
        for block in 0..(1usize << 16) / HVX_HALVES {
            let mut v = HvxVec::zero();
            for lane in 0..HVX_HALVES {
                v.set_hf(lane, F16((block * HVX_HALVES + lane) as u16));
            }
            let mut reference = 0.0f64;
            for lane in 0..HVX_HALVES {
                reference += v.get_hf(lane).to_f32() as f64;
            }
            let mut lanes = [F16::ZERO; HVX_HALVES];
            let mut lanes_f32 = [0.0f32; HVX_HALVES];
            for (lane, slot) in lanes.iter_mut().enumerate() {
                *slot = v.get_hf(lane);
            }
            F16::to_f32_slice(&lanes, &mut lanes_f32);
            let mut chunked = 0.0f64;
            for &x in &lanes_f32 {
                chunked += x as f64;
            }
            if reference.is_nan() {
                assert!(chunked.is_nan(), "block {block}");
            } else {
                assert_eq!(reference.to_bits(), chunked.to_bits(), "block {block}");
            }
        }
    }

    #[test]
    fn chunked_host_staging_is_bit_identical_to_elementwise() {
        // softmax_host stages/reads back through the chunked converters;
        // an elementwise-staged run of the same kernel must produce
        // bit-identical outputs (the converters only change loop shape).
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let cfg = SoftmaxConfig {
            rows: 3,
            cols: 192,
            method: ExpMethod::Lut16,
        };
        let input = workload(3, 192, 13);
        let (got, _) = softmax_host(&mut c, &lut, cfg, &input);
        let mark = c.tcm_mark();
        let data = c.tcm_alloc((3 * 192 * 2) as u32, 128).unwrap();
        let mut bytes = vec![0u8; 3 * 192 * 2];
        for (i, &x) in input.iter().enumerate() {
            bytes[2 * i..2 * i + 2].copy_from_slice(&F16::from_f32(x).0.to_le_bytes());
        }
        c.tcm_poke(data, &bytes);
        softmax_rows(&mut c, &lut, cfg, data);
        let out_bytes = c.tcm_peek(data, 3 * 192 * 2).to_vec();
        let expect: Vec<f32> = (0..3 * 192)
            .map(|i| F16(u16::from_le_bytes([out_bytes[2 * i], out_bytes[2 * i + 1]])).to_f32())
            .collect();
        c.tcm_release(mark);
        assert_eq!(got.len(), expect.len());
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(g.to_bits(), e.to_bits(), "element {i}");
        }
    }

    #[test]
    fn functional_and_cost_only_charge_identically() {
        let cfg = SoftmaxConfig {
            rows: 3,
            cols: 128,
            method: ExpMethod::Lut16,
        };
        let run = |mode| {
            let mut c = NpuContext::new(DeviceProfile::v75(), mode);
            let lut = ExpLut16::build(&mut c).unwrap();
            let data = c.tcm_alloc(3 * 128 * 2, 128).unwrap();
            let cost = softmax_rows(&mut c, &lut, cfg, data);
            (cost.wall_secs, c.cost.counters().hvx_instructions)
        };
        let (wf, if_) = run(ExecMode::Functional);
        let (wc, ic) = run(ExecMode::CostOnly);
        assert!((wf - wc).abs() < 1e-12);
        assert_eq!(if_, ic);
    }
}
