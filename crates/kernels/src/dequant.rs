//! INT4/INT8 -> FP16 dequantization kernels (paper Sections 5.1-5.2,
//! Figure 9).
//!
//! Three code paths, matching the Figure 15 ablation arms:
//!
//! 1. **Coalesced LUT** (`dequant_super_q4_lut`) — the paper's design. One
//!    128-byte register holds the INT4 codes of a whole super-group (256
//!    elements); two `vlut16` lookups map nibbles straight to IEEE FP16 in
//!    `[-8, 7]` (no unpack chain, no qfloat converts), two shuffles restore
//!    element order, and two more `vlut16`s broadcast four group scales
//!    each. Output registers store contiguously because the weights were
//!    quantized in HMX stream order.
//! 2. **Naive conversion on HMX layout** (`dequant_pairs_naive_hmx`) — same
//!    weight order but plain 18-byte AoS groups and the conventional
//!    mask/unpack/convert/bias/multiply instruction sequence, paying qfloat
//!    conversion on pre-V79 devices and per-group scalar scale broadcasts.
//! 3. **Baseline scatter** (`dequant_group_baseline_scatter`) — conventional
//!    column-major group quantization: after the naive conversion chain,
//!    each group's 32 values must be *scattered* to their interleaved
//!    positions in the HMX tile (Figure 6), costing a `vscatter` per group.

use hexsim::f16::F16;
use hexsim::hmx::tile_elem_offset;
use hexsim::hvx::{HvxVec, HVX_BYTES};
use hexsim::prelude::*;
use tilequant::block::{q4_0_lut, BlockQ4_0, BlockQ8_0, GROUP_SIZE};
use tilequant::super_group::{SUPER_Q4_BYTES, SUPER_Q8_BYTES};

/// Hoisted constants for the LUT dequantization inner loop: built once per
/// kernel launch (3 instructions), reused across every super-block.
pub struct DequantEnv {
    /// `0x0f` byte mask for low-nibble extraction.
    pub mask0f: HvxVec,
    /// Constant indices `i / 32` used to broadcast 4 scales per `vlut16`.
    pub idx_quarter: HvxVec,
    /// The 16-entry INT4 -> FP16 value table (`code - 8`).
    pub lut: [F16; 16],
}

impl DequantEnv {
    /// Builds the hoisted constants, charging their setup instructions.
    pub fn new(ctx: &mut NpuContext) -> Self {
        Self::with_table(ctx, q4_0_lut())
    }

    /// Builds the constants with a custom 16-entry value table — the
    /// paper's point that the LUT-centric design supports NF4/FP4/IQ4_NL
    /// "simply by adjusting the table contents" (Section 5.2.2).
    pub fn with_table(ctx: &mut NpuContext, lut: [F16; 16]) -> Self {
        let mask0f = ctx.vsplat_b(0x0f);
        // Index pattern: byte i selects scale i/32; built with one splat
        // plus one add-offset instruction on hardware.
        ctx.cost.charge_hvx_packets(2);
        let mut idx_quarter = HvxVec::zero();
        for i in 0..HVX_BYTES {
            idx_quarter.0[i] = (i / 32) as u8;
        }
        DequantEnv {
            mask0f,
            idx_quarter,
            lut,
        }
    }
}

/// Builds a 16-entry scale table register from four FP16 scales (the upper
/// twelve entries are unused padding). On hardware this is the scales
/// register itself; the load that brought it on-chip is charged by the
/// caller.
fn scale_table(scales: &[F16]) -> [F16; 16] {
    let mut t = [F16::ZERO; 16];
    t[..scales.len()].copy_from_slice(scales);
    t
}

/// Reads the eight super-group scales that trail the quants register
/// (simulation-side view of the already-loaded scales register).
fn read_scales(ctx: &NpuContext, addr: TcmAddr) -> [F16; 8] {
    let bytes = ctx.tcm_peek(addr, 16);
    std::array::from_fn(|g| F16(u16::from_le_bytes([bytes[2 * g], bytes[2 * g + 1]])))
}

/// Dequantizes one Q4 super-block (256 elements) from `src` (144 bytes in
/// TCM) to 512 bytes of FP16 at `dst`, using the paper's LUT pipeline.
///
/// Instruction trace per super-block: 2 loads, `vand`+`vshr`, 2 value
/// `vlut16`, 2 `vshuff`, 2 scale `vlut16`, 4 `vmpy` (+4 qfloat converts on
/// pre-V79), 4 stores.
pub fn dequant_super_q4_lut(ctx: &mut NpuContext, env: &DequantEnv, src: TcmAddr, dst: TcmAddr) {
    // Load the coalesced quants register and the scales register.
    let quants = ctx.vmem_ld_tcm(src);
    let _scales_reg = ctx.vmem_ld_tcm(src.offset(128));
    let scales = read_scales(ctx, src.offset(128));

    // Nibble split: byte i holds element 2i (low) and 2i+1 (high).
    let lo_idx = ctx.vand_b(&quants, &env.mask0f);
    let hi_idx = ctx.vshr_b(&quants, 4);

    // Straight to IEEE FP16 via table lookup (Figure 9, right path).
    let (e0, e1) = ctx.vlut16_hf(&lo_idx, &env.lut); // Elements 0,2,..,254.
    let (o0, o1) = ctx.vlut16_hf(&hi_idx, &env.lut); // Elements 1,3,..,255.

    // Restore element order: interleave even/odd streams.
    let (v0, v1) = ctx.vshuff_h(&e0, &o0); // Elements 0..63, 64..127.
    let (v2, v3) = ctx.vshuff_h(&e1, &o1); // Elements 128..191, 192..255.

    // Scale broadcast: one vlut16 covers four groups (Section 5.2.2).
    let (s01, s23) = ctx.vlut16_hf(&env.idx_quarter, &scale_table(&scales[0..4]));
    let (s45, s67) = ctx.vlut16_hf(&env.idx_quarter, &scale_table(&scales[4..8]));

    // Apply scales; the multiply is the only float op left, so pre-V79
    // devices pay exactly one qfloat convert per output register.
    let r0 = ctx.vmpy_hf(&v0, &s01);
    let r0 = ctx.vconv_qf16(r0);
    let r1 = ctx.vmpy_hf(&v1, &s23);
    let r1 = ctx.vconv_qf16(r1);
    let r2 = ctx.vmpy_hf(&v2, &s45);
    let r2 = ctx.vconv_qf16(r2);
    let r3 = ctx.vmpy_hf(&v3, &s67);
    let r3 = ctx.vconv_qf16(r3);

    // Contiguous stores: the whole point of quantizing in HMX stream order.
    ctx.vmem_st_tcm(dst, &r0);
    ctx.vmem_st_tcm(dst.offset(128), &r1);
    ctx.vmem_st_tcm(dst.offset(256), &r2);
    ctx.vmem_st_tcm(dst.offset(384), &r3);
}

/// Dequantizes one Q8 super-block (256 elements, 272 bytes) at `src` to 512
/// bytes of FP16 at `dst`. INT8 cannot use a 16-entry LUT, so values take
/// the sign-extend + convert path, but scale broadcast still uses `vlut16`
/// and stores remain contiguous.
pub fn dequant_super_q8_lut(ctx: &mut NpuContext, env: &DequantEnv, src: TcmAddr, dst: TcmAddr) {
    let q_lo = ctx.vmem_ld_tcm(src);
    let q_hi = ctx.vmem_ld_tcm(src.offset(128));
    let _scales_reg = ctx.vmem_ld_tcm(src.offset(256));
    let scales = read_scales(ctx, src.offset(256));

    // Sign-extend INT8 -> INT16, then convert to FP16.
    let (a0, a1) = ctx.vunpack_b_h(&q_lo); // Elements 0..63, 64..127.
    let (a2, a3) = ctx.vunpack_b_h(&q_hi); // Elements 128..191, 192..255.
    let f0 = ctx.vcvt_h_hf(&a0);
    let f0 = ctx.vconv_qf16(f0);
    let f1 = ctx.vcvt_h_hf(&a1);
    let f1 = ctx.vconv_qf16(f1);
    let f2 = ctx.vcvt_h_hf(&a2);
    let f2 = ctx.vconv_qf16(f2);
    let f3 = ctx.vcvt_h_hf(&a3);
    let f3 = ctx.vconv_qf16(f3);

    let (s01, s23) = ctx.vlut16_hf(&env.idx_quarter, &scale_table(&scales[0..4]));
    let (s45, s67) = ctx.vlut16_hf(&env.idx_quarter, &scale_table(&scales[4..8]));

    let r0 = ctx.vmpy_hf(&f0, &s01);
    let r0 = ctx.vconv_qf16(r0);
    let r1 = ctx.vmpy_hf(&f1, &s23);
    let r1 = ctx.vconv_qf16(r1);
    let r2 = ctx.vmpy_hf(&f2, &s45);
    let r2 = ctx.vconv_qf16(r2);
    let r3 = ctx.vmpy_hf(&f3, &s67);
    let r3 = ctx.vconv_qf16(r3);

    ctx.vmem_st_tcm(dst, &r0);
    ctx.vmem_st_tcm(dst.offset(128), &r1);
    ctx.vmem_st_tcm(dst.offset(256), &r2);
    ctx.vmem_st_tcm(dst.offset(384), &r3);
}

/// Bytes of quantized input consumed per super-block for a scheme.
pub fn super_block_bytes(scheme: tilequant::QuantScheme) -> usize {
    match scheme {
        tilequant::QuantScheme::Q4_0 => SUPER_Q4_BYTES,
        tilequant::QuantScheme::Q8_0 => SUPER_Q8_BYTES,
    }
}

/// Naive dequantization of two Q4 groups (64 elements) already in HMX
/// stream order but stored as plain 18-byte AoS blocks at `src`; writes 128
/// bytes of FP16 to `dst`.
///
/// The functional result is computed exactly; the instruction trace is the
/// modeled naive sequence (Figure 9, left path): 1 wide load spanning the
/// misaligned blocks, 2 align, 2 nibble, 2 sign-fix, 2 int-convert (+2
/// qfloat), 2 scalar scale broadcasts, 2 multiplies (+2 qfloat), 1 store.
pub fn dequant_pairs_naive_hmx(ctx: &mut NpuContext, src: TcmAddr, dst: TcmAddr) {
    // Cost: one (unaligned) register load covering both 18-byte blocks.
    ctx.cost.charge_tcm_bytes(HVX_BYTES as u64);
    // Modeled ALU sequence; see doc comment. Pre-V79 pays 4 qfloat
    // converts, V79+ none.
    let qf = 4 * ctx.device().qf16_convert_ops();
    ctx.cost.charge_hvx_packets(13 + qf);
    // One packed store of the 64 results.
    ctx.cost.charge_tcm_bytes(HVX_BYTES as u64);

    // Exact functional result via the block codec.
    let mut out = [0u8; 128];
    for g in 0..2 {
        let block = BlockQ4_0::from_bytes(ctx.tcm_peek(src.offset(g * 18), 18));
        for i in 0..GROUP_SIZE {
            let v = block.dequantize_f16(i);
            let o = (g as usize * GROUP_SIZE + i) * 2;
            out[o..o + 2].copy_from_slice(&v.0.to_le_bytes());
        }
    }
    ctx.tcm_poke(dst, &out);
}

/// Naive dequantization of one Q8 group (32 elements, 34-byte block) in HMX
/// stream order; writes 64 bytes of FP16 to `dst`.
pub fn dequant_group_naive_q8_hmx(ctx: &mut NpuContext, src: TcmAddr, dst: TcmAddr) {
    ctx.cost.charge_tcm_bytes(HVX_BYTES as u64);
    // Modeled: 1 align, 1 unpack, 1 convert (+1 qf), 1 scale broadcast,
    // 1 multiply (+1 qf), handling only half a register of useful data.
    let qf = 2 * ctx.device().qf16_convert_ops();
    ctx.cost.charge_hvx_packets(5 + qf);
    ctx.cost.charge_tcm_bytes(HVX_BYTES as u64);

    let block = BlockQ8_0::from_bytes(ctx.tcm_peek(src, 34));
    let d = block.scale;
    let mut out = [0u8; 64];
    for i in 0..GROUP_SIZE {
        let v = F16::from_f32(block.quants[i] as f32).mul(d);
        out[2 * i..2 * i + 2].copy_from_slice(&v.0.to_le_bytes());
    }
    ctx.tcm_poke(dst, &out);
}

/// Baseline: dequantizes one conventional column-major Q4 group (32
/// elements of a single output column `col`, k-range `32*group_k ..`), then
/// *scatters* the values into the interleaved HMX tile at `dst_tile`.
///
/// The scatter is the cost disaster the paper measures: consecutive column
/// elements land 2 or 126 bytes apart in the tile (Figure 6), so a
/// `vscatter` (24-48 packets) is charged per group on top of the naive
/// conversion chain.
pub fn dequant_group_baseline_scatter(
    ctx: &mut NpuContext,
    src: TcmAddr,
    dst_tile: TcmAddr,
    col_in_tile: usize,
) {
    // Cost: wide load of the 18-byte block + naive chain (Figure 9 left:
    // 2 nibble, 2 unpack, 2 bias, 2 convert (+2 qf), scalar scale extract +
    // splat, 2 multiply (+2 qf)).
    ctx.cost.charge_tcm_bytes(HVX_BYTES as u64);
    let qf = 4 * ctx.device().qf16_convert_ops();
    ctx.cost.charge_hvx_packets(11 + qf);
    // The scatter itself (half the lanes carry this group's 32 values).
    ctx.cost.charge_vgather(true);

    let block = BlockQ4_0::from_bytes(ctx.tcm_peek(src, 18));
    for (i, v) in block.dequantize().iter().enumerate() {
        let off = tile_elem_offset(i, col_in_tile);
        let h = F16::from_f32(*v);
        let addr = dst_tile.offset(off as u32);
        let bytes = h.0.to_le_bytes();
        ctx.tcm_poke(addr, &bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hexsim::cost::Engine;
    use tilequant::block::BlockQ4_0;
    use tilequant::super_group::SuperBlockQ4;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
    }

    fn test_blocks(seed: u32) -> [BlockQ4_0; 8] {
        std::array::from_fn(|g| {
            let vals: Vec<f32> = (0..32)
                .map(|i| (((seed as usize + g * 32 + i) as f32) * 0.7).sin() * 3.0)
                .collect();
            BlockQ4_0::quantize(&vals)
        })
    }

    #[test]
    fn lut_dequant_is_bit_exact() {
        let mut c = ctx();
        let env = DequantEnv::new(&mut c);
        let blocks = test_blocks(1);
        let sb = SuperBlockQ4::from_blocks(&blocks);
        let src = c.tcm_alloc(256, 128).unwrap();
        let dst = c.tcm_alloc(512, 128).unwrap();
        c.tcm_poke(src, &sb.to_bytes());
        dequant_super_q4_lut(&mut c, &env, src, dst);
        // Compare against the scalar F16 dequantization path, element by
        // element (the kernel must match it bit-exactly).
        for (g, block) in blocks.iter().enumerate() {
            for i in 0..32 {
                let expected = block.dequantize_f16(i);
                let off = (g * 32 + i) * 2;
                let got = c.tcm_peek(dst.offset(off as u32), 2);
                let got = F16(u16::from_le_bytes([got[0], got[1]]));
                assert_eq!(got, expected, "group {g} elem {i}");
            }
        }
    }

    #[test]
    fn lut_dequant_instruction_budget() {
        let mut c = ctx();
        let env = DequantEnv::new(&mut c);
        let src = c.tcm_alloc(256, 128).unwrap();
        let dst = c.tcm_alloc(512, 128).unwrap();
        let before = c.cost.counters().hvx_instructions;
        let before_lut = c.cost.counters().vluts;
        dequant_super_q4_lut(&mut c, &env, src, dst);
        let instr = c.cost.counters().hvx_instructions - before;
        let luts = c.cost.counters().vluts - before_lut;
        assert_eq!(luts, 4, "2 value lookups + 2 scale broadcasts");
        // 2 nibble + 4 vlut + 2 shuffle + 4 mul + 4 qf-convert = 16 on V75.
        assert_eq!(instr, 16);
        // Memory: 256 B loads + 512 B stores.
        assert_eq!(c.cost.counters().tcm_bytes, 768);
    }

    #[test]
    fn lut_dequant_no_qfloat_cost_on_v79() {
        let mut c = NpuContext::new(DeviceProfile::v79(), ExecMode::Functional);
        let env = DequantEnv::new(&mut c);
        let src = c.tcm_alloc(256, 128).unwrap();
        let dst = c.tcm_alloc(512, 128).unwrap();
        let before = c.cost.counters().hvx_instructions;
        dequant_super_q4_lut(&mut c, &env, src, dst);
        assert_eq!(c.cost.counters().hvx_instructions - before, 12);
    }

    #[test]
    fn q8_dequant_is_exact() {
        let mut c = ctx();
        let env = DequantEnv::new(&mut c);
        let blocks: [BlockQ8_0; 8] = std::array::from_fn(|g| {
            let vals: Vec<f32> = (0..32)
                .map(|i| ((g * 31 + i) as f32 * 0.3).cos() * 2.0)
                .collect();
            BlockQ8_0::quantize(&vals)
        });
        let sb = tilequant::super_group::SuperBlockQ8::from_blocks(&blocks);
        let src = c.tcm_alloc(384, 128).unwrap();
        let dst = c.tcm_alloc(512, 128).unwrap();
        c.tcm_poke(src, &sb.to_bytes());
        dequant_super_q8_lut(&mut c, &env, src, dst);
        for (g, block) in blocks.iter().enumerate() {
            for i in 0..32 {
                let expected = F16::from_f32(block.quants[i] as f32).mul(block.scale);
                let off = (g * 32 + i) * 2;
                let got = c.tcm_peek(dst.offset(off as u32), 2);
                let got = F16(u16::from_le_bytes([got[0], got[1]]));
                assert_eq!(got, expected, "group {g} elem {i}");
            }
        }
    }

    #[test]
    fn naive_hmx_matches_lut_values() {
        let mut c = ctx();
        let env = DequantEnv::new(&mut c);
        let blocks = test_blocks(9);
        // LUT path input: coalesced.
        let sb = SuperBlockQ4::from_blocks(&blocks);
        let src_sb = c.tcm_alloc(256, 128).unwrap();
        let dst_lut = c.tcm_alloc(512, 128).unwrap();
        c.tcm_poke(src_sb, &sb.to_bytes());
        dequant_super_q4_lut(&mut c, &env, src_sb, dst_lut);
        // Naive path input: plain AoS blocks.
        let src_blocks = c.tcm_alloc(18 * 8 + 128, 128).unwrap();
        let dst_naive = c.tcm_alloc(512, 128).unwrap();
        for (g, b) in blocks.iter().enumerate() {
            c.tcm_poke(src_blocks.offset(g as u32 * 18), &b.to_bytes());
        }
        for pair in 0..4u32 {
            dequant_pairs_naive_hmx(
                &mut c,
                src_blocks.offset(pair * 36),
                dst_naive.offset(pair * 128),
            );
        }
        assert_eq!(c.tcm_peek(dst_lut, 512), c.tcm_peek(dst_naive, 512));
    }

    #[test]
    fn naive_is_slower_than_lut_per_element() {
        // Per-element HVX time: naive-on-HMX-layout must cost more than the
        // coalesced LUT path (Figure 15: 1.82-3.45x), and the scatter
        // baseline must be far worse (9.65-19.04x overall).
        let mut c = ctx();
        let env = DequantEnv::new(&mut c);
        let src = c.tcm_alloc(4096, 128).unwrap();
        let dst = c.tcm_alloc(4096, 128).unwrap();

        let t0 = c.cost.engine_secs(Engine::Hvx);
        dequant_super_q4_lut(&mut c, &env, src, dst); // 256 elems.
        let lut_per_elem = (c.cost.engine_secs(Engine::Hvx) - t0) / 256.0;

        let t0 = c.cost.engine_secs(Engine::Hvx);
        dequant_pairs_naive_hmx(&mut c, src, dst); // 64 elems.
        let naive_per_elem = (c.cost.engine_secs(Engine::Hvx) - t0) / 64.0;

        let t0 = c.cost.engine_secs(Engine::Hvx);
        dequant_group_baseline_scatter(&mut c, src, dst, 0); // 32 elems.
        let scatter_per_elem = (c.cost.engine_secs(Engine::Hvx) - t0) / 32.0;

        let naive_ratio = naive_per_elem / lut_per_elem;
        let scatter_ratio = scatter_per_elem / lut_per_elem;
        assert!(
            (1.5..4.5).contains(&naive_ratio),
            "naive/lut per-element ratio {naive_ratio}"
        );
        assert!(
            scatter_ratio > 6.0,
            "scatter/lut per-element ratio {scatter_ratio}"
        );
    }

    #[test]
    fn baseline_scatter_places_elements_in_tile_order() {
        let mut c = ctx();
        let blocks = test_blocks(4);
        let src = c.tcm_alloc(18, 128).unwrap();
        let tile = c.tcm_alloc(2048, 2048).unwrap();
        c.tcm_poke(src, &blocks[0].to_bytes());
        dequant_group_baseline_scatter(&mut c, src, tile, 5);
        let unpacked = hexsim::hmx::unpack_tile(c.tcm_peek(tile, 2048));
        let expected = blocks[0].dequantize();
        for k in 0..32 {
            assert!(
                (unpacked[k][5].to_f32() - expected[k]).abs() < 1e-2,
                "row {k}"
            );
        }
        assert_eq!(c.cost.counters().vgathers, 1);
    }

    #[test]
    fn lut_table_swap_supports_nf4() {
        // Same kernel, different table contents: NF4 dequantization must be
        // bit-exact against the codec's scalar path.
        use tilequant::block::{nf4_lut, BlockTable4};
        let mut c = ctx();
        let env = DequantEnv::with_table(&mut c, nf4_lut());
        let table = nf4_lut();
        let blocks: [BlockTable4; 8] = std::array::from_fn(|g| {
            let vals: Vec<f32> = (0..32)
                .map(|i| (((g * 32 + i) as f32) * 0.41).sin() * 2.5)
                .collect();
            BlockTable4::quantize(&vals, &table)
        });
        // BlockTable4 shares the super-block wire shape (16 B nibbles +
        // FP16 scale), so coalesce manually.
        let mut sb = [0u8; 144];
        for (g, b) in blocks.iter().enumerate() {
            sb[g * 16..(g + 1) * 16].copy_from_slice(&b.quants);
            sb[128 + 2 * g..130 + 2 * g].copy_from_slice(&b.scale.0.to_le_bytes());
        }
        let src = c.tcm_alloc(256, 128).unwrap();
        let dst = c.tcm_alloc(512, 128).unwrap();
        c.tcm_poke(src, &sb);
        dequant_super_q4_lut(&mut c, &env, src, dst);
        for (g, b) in blocks.iter().enumerate() {
            let expected = b.dequantize_f16(&table);
            for (i, e) in expected.iter().enumerate() {
                let off = (g * 32 + i) * 2;
                let got = c.tcm_peek(dst.offset(off as u32), 2);
                let got = F16(u16::from_le_bytes([got[0], got[1]]));
                assert_eq!(got, *e, "group {g} elem {i}");
            }
        }
    }

    #[test]
    fn q8_naive_group_is_exact() {
        let mut c = ctx();
        let vals: Vec<f32> = (0..32).map(|i| (i as f32 * 0.9).sin()).collect();
        let block = BlockQ8_0::quantize(&vals);
        let src = c.tcm_alloc(34, 128).unwrap();
        let dst = c.tcm_alloc(64, 128).unwrap();
        c.tcm_poke(src, &block.to_bytes());
        dequant_group_naive_q8_hmx(&mut c, src, dst);
        for i in 0..32 {
            let got = c.tcm_peek(dst.offset(2 * i as u32), 2);
            let got = F16(u16::from_le_bytes([got[0], got[1]]));
            let expected = F16::from_f32(block.quants[i] as f32).mul(block.scale);
            assert_eq!(got, expected);
        }
    }
}
