//! Mixed-precision GEMM/GEMV: streaming weight dequantization feeding the
//! HMX matrix engine (paper Sections 5.1-5.2, ablated in Figure 15).
//!
//! The pipeline per weight tile is: DMA the quantized bytes DDR -> TCM,
//! dequantize to FP16 on the HVX, multiply-accumulate on the HMX. DMA,
//! HVX and HMX run concurrently (double buffering), so the kernel's wall
//! time is the maximum of the three engine times — which is how the paper's
//! "no dequantization" arm becomes a DMA-bound upper bound that the
//! coalesced-LUT design approaches within ~27%.
//!
//! Four variants, matching Figure 15's arms:
//!
//! | Variant            | Weight layout      | Dequant path                |
//! |--------------------|--------------------|-----------------------------|
//! | `BaselineScatter`  | column-major groups| naive chain + `vscatter`    |
//! | `HmxLayoutNaive`   | HMX tile groups    | naive chain, contiguous st  |
//! | `CoalescedLut`     | HMX tile groups + super-blocks | `vlut16` path   |
//! | `NoDequantBound`   | HMX tile groups    | none (copy only; perf bound)|

use hexsim::f16::F16;
use hexsim::hmx::{pack_tile, unpack_tile, HmxAccumulator, TILE_BYTES, TILE_DIM};
use hexsim::prelude::*;
use tilequant::block::{BlockQ4_0, BlockQ8_0, Q4_0_BLOCK_BYTES, Q8_0_BLOCK_BYTES};
use tilequant::super_group::{
    coalesce_q4_stream, coalesce_q8_stream, SUPER_Q4_BYTES, SUPER_Q8_BYTES,
};
use tilequant::{QuantScheme, QuantizedMatrix, WeightLayout};

use crate::dequant::{
    dequant_group_baseline_scatter, dequant_group_naive_q8_hmx, dequant_pairs_naive_hmx,
    dequant_super_q4_lut, dequant_super_q8_lut, DequantEnv,
};

/// Which dequantization arm of the Figure 15 ablation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DequantVariant {
    /// Conventional layout; dequantize group-by-group and scatter into
    /// tiles ("baseline" in Figure 15).
    BaselineScatter,
    /// Offline HMX-layout rearrangement with tile-group quantization, but
    /// the naive conversion chain ("w/ HMX layout").
    HmxLayoutNaive,
    /// Full design: super-group coalescing + LUT dequantization ("ours").
    CoalescedLut,
    /// Copy quantized bytes on-chip without any dequantization — the
    /// performance upper bound ("no dequant.").
    NoDequantBound,
}

impl DequantVariant {
    /// Label as used in Figure 15.
    pub fn label(self) -> &'static str {
        match self {
            DequantVariant::BaselineScatter => "baseline",
            DequantVariant::HmxLayoutNaive => "w/ HMX layout",
            DequantVariant::CoalescedLut => "ours",
            DequantVariant::NoDequantBound => "no dequant.",
        }
    }

    /// The weight layout this variant requires.
    pub fn required_layout(self) -> WeightLayout {
        match self {
            DequantVariant::BaselineScatter => WeightLayout::ColumnMajorGroups,
            _ => WeightLayout::HmxTileGroups,
        }
    }
}

/// GEMM shape and execution configuration.
#[derive(Clone, Copy, Debug)]
pub struct GemmConfig {
    /// Rows of the activation matrix (decode batch size; 1 for GEMV).
    pub m: usize,
    /// Accumulation dimension (multiple of 32).
    pub k: usize,
    /// Output dimension (multiple of 32).
    pub n: usize,
    /// Block codec of the weights.
    pub scheme: QuantScheme,
    /// Dequantization arm.
    pub variant: DequantVariant,
    /// HVX threads the dequantizer spreads across.
    pub threads: u32,
}

/// GEMM output and cost.
#[derive(Clone, Debug)]
pub struct GemmResult {
    /// Row-major `[m, n]` FP16 output (empty in cost-only mode).
    pub out: Vec<F16>,
    /// Single overlapped-phase cost; wall = max over engines.
    pub cost: PhaseCost,
}

/// Weights prepared for the NPU: quantized bytes resident in DDR in the
/// order the chosen variant streams them.
#[derive(Debug)]
pub struct PreparedWeights {
    /// DDR residency of the streaming byte layout.
    pub buf: DdrBuffer,
    /// Matrix shape `[k, n]`.
    pub k: usize,
    /// Output dimension.
    pub n: usize,
    /// Codec.
    pub scheme: QuantScheme,
    /// Variant the bytes were packed for.
    pub variant: DequantVariant,
    /// Bytes per 32x32 weight tile in the stream.
    pub tile_bytes: usize,
    /// Total byte length.
    pub len: u64,
}

/// Bytes per 1024-element tile of quantized stream for a scheme/variant.
fn tile_stream_bytes(scheme: QuantScheme, variant: DequantVariant) -> usize {
    match (scheme, variant) {
        (QuantScheme::Q4_0, DequantVariant::CoalescedLut) => 4 * SUPER_Q4_BYTES,
        (QuantScheme::Q8_0, DequantVariant::CoalescedLut) => 4 * SUPER_Q8_BYTES,
        (QuantScheme::Q4_0, _) => 32 * Q4_0_BLOCK_BYTES,
        (QuantScheme::Q8_0, _) => 32 * Q8_0_BLOCK_BYTES,
    }
}

/// Uploads a quantized matrix into DDR in the byte order the variant
/// expects (coalescing super-groups for the LUT arm). Offline cost: free.
///
/// # Panics
///
/// Panics if the matrix layout does not match the variant's requirement.
pub fn prepare_weights(
    ctx: &mut NpuContext,
    qm: &QuantizedMatrix,
    variant: DequantVariant,
) -> SimResult<PreparedWeights> {
    assert_eq!(
        qm.layout,
        variant.required_layout(),
        "matrix layout does not match variant"
    );
    let tiles = (qm.k / TILE_DIM) * (qm.n / TILE_DIM);
    let len = (tiles * tile_stream_bytes(qm.scheme, variant)) as u64;
    let buf = if ctx.mode == ExecMode::Functional {
        let bytes: Vec<u8> = if variant == DequantVariant::CoalescedLut {
            match qm.scheme {
                QuantScheme::Q4_0 => {
                    let blocks: Vec<BlockQ4_0> =
                        (0..qm.num_blocks()).map(|i| qm.block_q4(i)).collect();
                    coalesce_q4_stream(&blocks)
                }
                QuantScheme::Q8_0 => {
                    let blocks: Vec<BlockQ8_0> =
                        (0..qm.num_blocks()).map(|i| qm.block_q8(i)).collect();
                    coalesce_q8_stream(&blocks)
                }
            }
        } else {
            qm.bytes.clone()
        };
        assert_eq!(bytes.len() as u64, len, "stream length mismatch");
        ctx.ddr_alloc_from(&bytes)?
    } else {
        // Cost-only: the stream size is derived from the shape; no bytes
        // are materialized.
        ctx.ddr_alloc(len)?
    };
    Ok(PreparedWeights {
        buf,
        k: qm.k,
        n: qm.n,
        scheme: qm.scheme,
        variant,
        tile_bytes: tile_stream_bytes(qm.scheme, variant),
        len,
    })
}

/// Packs activation rows `[m, k]` into interleaved HMX tiles in TCM
/// (functional), charging the shuffle/store trace per tile.
#[allow(clippy::needless_range_loop)]
fn stage_activations(ctx: &mut NpuContext, act: &[F16], m: usize, k: usize, area: Option<TcmAddr>) {
    let m_tiles = m.div_ceil(TILE_DIM);
    let k_tiles = k / TILE_DIM;
    // Charges: per tile, 16 cross-lane shuffles plus a load+store sweep.
    let tiles = (m_tiles * k_tiles) as u64;
    ctx.cost.charge_dma((m * k * 2) as u64);
    ctx.cost.charge_hvx_packets(tiles * 16);
    ctx.cost.charge_tcm_bytes(tiles * 2 * TILE_BYTES as u64);
    let Some(area) = area else { return };
    for mt in 0..m_tiles {
        for kt in 0..k_tiles {
            let mut tile = [[F16::ZERO; TILE_DIM]; TILE_DIM];
            for r in 0..TILE_DIM {
                let row = mt * TILE_DIM + r;
                if row >= m {
                    break;
                }
                for c in 0..TILE_DIM {
                    tile[r][c] = act[row * k + kt * TILE_DIM + c];
                }
            }
            let off = ((mt * k_tiles + kt) * TILE_BYTES) as u32;
            let bytes = pack_tile(&tile);
            ctx.tcm_poke(area.offset(off), &bytes);
        }
    }
}

/// Dequantizes one staged weight tile into `wgt_tile` via the variant's
/// kernel. `staging` holds the tile's quantized bytes (already DMA'd).
fn dequant_tile(
    ctx: &mut NpuContext,
    env: &DequantEnv,
    cfg: &GemmConfig,
    staging: TcmAddr,
    wgt_tile: TcmAddr,
) {
    match (cfg.variant, cfg.scheme) {
        (DequantVariant::CoalescedLut, QuantScheme::Q4_0) => {
            for s in 0..4u32 {
                dequant_super_q4_lut(
                    ctx,
                    env,
                    staging.offset(s * SUPER_Q4_BYTES as u32),
                    wgt_tile.offset(s * 512),
                );
            }
        }
        (DequantVariant::CoalescedLut, QuantScheme::Q8_0) => {
            for s in 0..4u32 {
                dequant_super_q8_lut(
                    ctx,
                    env,
                    staging.offset(s * SUPER_Q8_BYTES as u32),
                    wgt_tile.offset(s * 512),
                );
            }
        }
        (DequantVariant::HmxLayoutNaive, QuantScheme::Q4_0) => {
            for p in 0..16u32 {
                dequant_pairs_naive_hmx(
                    ctx,
                    staging.offset(p * 2 * Q4_0_BLOCK_BYTES as u32),
                    wgt_tile.offset(p * 128),
                );
            }
        }
        (DequantVariant::HmxLayoutNaive, QuantScheme::Q8_0) => {
            for gi in 0..32u32 {
                dequant_group_naive_q8_hmx(
                    ctx,
                    staging.offset(gi * Q8_0_BLOCK_BYTES as u32),
                    wgt_tile.offset(gi * 64),
                );
            }
        }
        (DequantVariant::BaselineScatter, scheme) => {
            // Conventional layout: the staged bytes hold one group per
            // output column of this tile (32 groups).
            let block_bytes = scheme.block_bytes() as u32;
            for col in 0..32 {
                match scheme {
                    QuantScheme::Q4_0 => dequant_group_baseline_scatter(
                        ctx,
                        staging.offset(col as u32 * block_bytes),
                        wgt_tile,
                        col,
                    ),
                    QuantScheme::Q8_0 => {
                        // Q8 baseline: naive chain + the same scatter cost.
                        let src = staging.offset(col as u32 * block_bytes);
                        ctx.cost.charge_tcm_bytes(128);
                        let qf = 2 * ctx.device().qf16_convert_ops();
                        ctx.cost.charge_hvx_packets(7 + qf);
                        ctx.cost.charge_vgather(true);
                        let block = BlockQ8_0::from_bytes(ctx.tcm_peek(src, 34));
                        for (i, q) in block.quants.iter().enumerate() {
                            let vf = F16::from_f32(*q as f32).mul(block.scale);
                            let off = hexsim::hmx::tile_elem_offset(i, col) as u32;
                            let b = vf.0.to_le_bytes();
                            ctx.tcm_poke(wgt_tile.offset(off), &b);
                        }
                    }
                }
            }
        }
        (DequantVariant::NoDequantBound, scheme) => {
            // Copy quantized bytes on-chip without compute: the bandwidth
            // bound. Functionally we still produce correct FP16 tiles
            // (simulation-side, uncharged) so GEMM results stay checkable.
            let qbytes = tile_stream_bytes(scheme, DequantVariant::HmxLayoutNaive) as u64;
            ctx.cost.charge_tcm_bytes(qbytes * 2);
            if ctx.mode == ExecMode::Functional {
                let mut tile_bytes = vec![0u8; TILE_BYTES];
                match scheme {
                    QuantScheme::Q4_0 => {
                        for gi in 0..32 {
                            let src = staging.offset((gi * Q4_0_BLOCK_BYTES) as u32);
                            let block = BlockQ4_0::from_bytes(ctx.tcm_peek(src, Q4_0_BLOCK_BYTES));
                            for i in 0..32 {
                                let vf = block.dequantize_f16(i);
                                let o = (gi * 32 + i) * 2;
                                tile_bytes[o..o + 2].copy_from_slice(&vf.0.to_le_bytes());
                            }
                        }
                    }
                    QuantScheme::Q8_0 => {
                        for gi in 0..32 {
                            let src = staging.offset((gi * Q8_0_BLOCK_BYTES) as u32);
                            let block = BlockQ8_0::from_bytes(ctx.tcm_peek(src, Q8_0_BLOCK_BYTES));
                            for i in 0..32 {
                                let vf = F16::from_f32(block.quants[i] as f32).mul(block.scale);
                                let o = (gi * 32 + i) * 2;
                                tile_bytes[o..o + 2].copy_from_slice(&vf.0.to_le_bytes());
                            }
                        }
                    }
                }
                ctx.tcm_poke(wgt_tile, &tile_bytes);
            }
        }
    }
}

/// Runs the mixed-precision GEMM `Y[m, n] = X[m, k] x W[k, n]`.
///
/// (The output writeback loop indexes rows and columns directly — the
/// 2-D index arithmetic is clearer than iterator chains here.)
///
/// `act` is row-major `[m, k]` FP16 (may be empty in cost-only mode).
/// Returns the output and the overlapped-phase cost.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `weights`, or if functional mode
/// is used with a workload whose staging exceeds TCM.
#[allow(clippy::needless_range_loop)]
pub fn gemm_mixed(
    ctx: &mut NpuContext,
    cfg: &GemmConfig,
    weights: &PreparedWeights,
    act: &[F16],
) -> GemmResult {
    assert_eq!(weights.k, cfg.k);
    assert_eq!(weights.n, cfg.n);
    assert_eq!(weights.scheme, cfg.scheme);
    assert_eq!(weights.variant, cfg.variant);
    let functional = ctx.mode == ExecMode::Functional;
    if functional {
        assert_eq!(act.len(), cfg.m * cfg.k);
    }

    let m_tiles = cfg.m.div_ceil(TILE_DIM);
    let k_tiles = cfg.k / TILE_DIM;
    let n_tiles = cfg.n / TILE_DIM;
    let mark = ctx.tcm_mark();

    // TCM areas (functional only for the big activation array).
    let act_area = if functional {
        Some(
            ctx.tcm_alloc((m_tiles * k_tiles * TILE_BYTES) as u32, 2048)
                .expect("activation tiles must fit TCM in functional mode"),
        )
    } else {
        None
    };
    let staging = ctx
        .tcm_alloc((weights.tile_bytes + 128) as u32, 128)
        .expect("weight staging fits");
    let wgt_tile = ctx
        .tcm_alloc(TILE_BYTES as u32, 2048)
        .expect("wgt tile fits");
    let out_area = ctx
        .tcm_alloc((m_tiles * TILE_BYTES) as u32, 2048)
        .expect("output tiles fit");

    let mut out = if functional {
        vec![F16::ZERO; cfg.m * cfg.n]
    } else {
        Vec::new()
    };

    let prev = ctx.cost.set_hvx_parallelism(cfg.threads);
    let env = DequantEnv::new(ctx);
    let (_, cost) = ctx.phase("gemm", |ctx| {
        stage_activations(ctx, act, cfg.m, cfg.k, act_area);
        let mut accs: Vec<HmxAccumulator> = (0..m_tiles).map(|_| HmxAccumulator::new()).collect();
        let tiles = (n_tiles * k_tiles) as u64;
        ctx.replay_indexed(tiles, |ctx, idx| {
            let nt = (idx as usize) / k_tiles;
            let kt = (idx as usize) % k_tiles;
            if kt == 0 {
                for acc in accs.iter_mut() {
                    acc.clear();
                }
            }
            // Stream this tile's quantized bytes from DDR.
            let tile_idx = match cfg.variant {
                // Column-major tile stream for HMX layouts; the baseline's
                // conventional stream interleaves per-column groups, which
                // the DMA gathers with a 2D descriptor.
                DequantVariant::BaselineScatter => nt * k_tiles + kt,
                _ => nt * k_tiles + kt,
            };
            if cfg.variant == DequantVariant::BaselineScatter {
                // 2D DMA: 32 groups, one per column, strided by k/32 blocks.
                let block_bytes = cfg.scheme.block_bytes() as u64;
                let col_stride = k_tiles as u64 * block_bytes;
                let base = (nt * 32) as u64 * col_stride + kt as u64 * block_bytes;
                ctx.dma_h2t_2d(
                    weights.buf,
                    base,
                    col_stride,
                    staging,
                    cfg.scheme.block_bytes() as u32,
                    32,
                )
                .expect("baseline weight DMA");
            } else {
                ctx.dma_h2t(
                    weights.buf,
                    (tile_idx * weights.tile_bytes) as u64,
                    staging,
                    weights.tile_bytes as u32,
                );
            }
            dequant_tile(ctx, &env, cfg, staging, wgt_tile);
            // Multiply-accumulate every activation row-tile against this
            // weight tile.
            for (mt, acc) in accs.iter_mut().enumerate() {
                match act_area {
                    Some(area) => {
                        let act_tile = area.offset(((mt * k_tiles + kt) * TILE_BYTES) as u32);
                        ctx.hmx_matmul(acc, act_tile, wgt_tile);
                    }
                    None => ctx.hmx_charge(1),
                }
            }
            if kt == k_tiles - 1 {
                // Write back this output tile column.
                for (mt, acc) in accs.iter().enumerate() {
                    let out_tile = out_area.offset((mt * TILE_BYTES) as u32);
                    ctx.hmx_store_acc(acc, out_tile, None, None);
                    ctx.cost.charge_dma(TILE_BYTES as u64);
                    if functional {
                        let tile = unpack_tile(ctx.tcm_peek(out_tile, TILE_BYTES));
                        for r in 0..TILE_DIM {
                            let row = mt * TILE_DIM + r;
                            if row >= cfg.m {
                                break;
                            }
                            for c in 0..TILE_DIM {
                                out[row * cfg.n + nt * TILE_DIM + c] = tile[r][c];
                            }
                        }
                    }
                }
            }
        });
    });
    ctx.cost.restore_hvx_parallelism(prev);
    ctx.tcm_release(mark);
    GemmResult { out, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref_f32;
    use hexsim::cost::Engine;
    use tilequant::synth::gaussian_matrix;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
    }

    fn act_f16(m: usize, k: usize, seed: u64) -> Vec<F16> {
        (0..m * k)
            .map(|i| F16::from_f32((((i as u64 * (seed + 3)) % 41) as f32) / 20.0 - 1.0))
            .collect()
    }

    fn run_variant(
        variant: DequantVariant,
        scheme: QuantScheme,
        m: usize,
        k: usize,
        n: usize,
    ) -> (Vec<F16>, Vec<f32>, PhaseCost) {
        let mut c = ctx();
        let _lut_area = c.tcm_alloc(64 * 1024, 128).unwrap(); // Mimic resident LUT.
        let w = gaussian_matrix(k, n, 77, 0.7, 0.0);
        let qm = QuantizedMatrix::quantize(&w, k, n, scheme, variant.required_layout());
        let deq = qm.dequantize();
        let prepared = prepare_weights(&mut c, &qm, variant).unwrap();
        let act = act_f16(m, k, 5);
        let cfg = GemmConfig {
            m,
            k,
            n,
            scheme,
            variant,
            threads: 4,
        };
        let result = gemm_mixed(&mut c, &cfg, &prepared, &act);
        let act_f32: Vec<f32> = act.iter().map(|v| v.to_f32()).collect();
        let reference = gemm_ref_f32(&act_f32, &deq, m, k, n);
        (result.out, reference, result.cost)
    }

    fn check_close(got: &[F16], expect: &[f32], tol: f32, label: &str) {
        for (i, (g, e)) in got.iter().zip(expect).enumerate() {
            let diff = (g.to_f32() - e).abs();
            let bound = tol * e.abs().max(1.0);
            assert!(diff <= bound, "{label}[{i}]: {} vs {}", g.to_f32(), e);
        }
    }

    #[test]
    fn coalesced_lut_gemv_matches_reference() {
        let (out, reference, _) =
            run_variant(DequantVariant::CoalescedLut, QuantScheme::Q4_0, 1, 64, 64);
        check_close(&out, &reference, 0.02, "lut");
    }

    #[test]
    fn all_variants_agree_functionally() {
        let (lut, reference, _) =
            run_variant(DequantVariant::CoalescedLut, QuantScheme::Q4_0, 2, 64, 96);
        check_close(&lut, &reference, 0.02, "lut");
        let (naive, reference2, _) =
            run_variant(DequantVariant::HmxLayoutNaive, QuantScheme::Q4_0, 2, 64, 96);
        check_close(&naive, &reference2, 0.02, "naive");
        let (nodeq, reference4, _) =
            run_variant(DequantVariant::NoDequantBound, QuantScheme::Q4_0, 2, 64, 96);
        check_close(&nodeq, &reference4, 0.02, "nodeq");
        // LUT and naive share the tile-group quantization, so they must be
        // bit-identical, not merely close.
        assert_eq!(lut, naive);
        assert_eq!(lut, nodeq);
    }

    #[test]
    fn baseline_scatter_matches_its_own_reference() {
        // The baseline uses conventional grouping, so its quantized values
        // differ slightly from the tile-group ones; compare against its own
        // dequantized reference.
        let (out, reference, _) = run_variant(
            DequantVariant::BaselineScatter,
            QuantScheme::Q4_0,
            1,
            64,
            64,
        );
        check_close(&out, &reference, 0.02, "baseline");
    }

    #[test]
    fn q8_gemv_is_tighter_than_q4() {
        let (out8, ref8, _) =
            run_variant(DequantVariant::CoalescedLut, QuantScheme::Q8_0, 1, 64, 64);
        let rmse8: f32 = out8
            .iter()
            .zip(&ref8)
            .map(|(a, b)| (a.to_f32() - b) * (a.to_f32() - b))
            .sum::<f32>()
            .sqrt();
        assert!(rmse8 < 0.05, "q8 rmse {rmse8}");
    }

    #[test]
    fn gemv_speedups_match_figure_15_ranges() {
        // Cost-only at a paper shape: 2048x2048 Q4 GEMV on V75 with the
        // device's full thread pool.
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let wall = |c: &mut NpuContext, variant: DequantVariant, scheme| {
            let (k, n) = (2048, 2048);
            let w = vec![0.0f32; 1]; // Shape-only: no real weights needed.
            let _ = w;
            let qm = QuantizedMatrix {
                k,
                n,
                scheme,
                layout: variant.required_layout(),
                bytes: Vec::new(),
            };
            let prepared = prepare_weights(c, &qm, variant).unwrap();
            let cfg = GemmConfig {
                m: 1,
                k,
                n,
                scheme,
                variant,
                threads: 6,
            };
            let r = gemm_mixed(c, &cfg, &prepared, &[]);
            c.ddr_free(prepared.buf);
            r.cost.wall_secs
        };
        let t_base = wall(&mut c, DequantVariant::BaselineScatter, QuantScheme::Q4_0);
        let t_hmx = wall(&mut c, DequantVariant::HmxLayoutNaive, QuantScheme::Q4_0);
        let t_ours = wall(&mut c, DequantVariant::CoalescedLut, QuantScheme::Q4_0);
        let t_bound = wall(&mut c, DequantVariant::NoDequantBound, QuantScheme::Q4_0);

        let speedup_vs_baseline = t_base / t_ours;
        let speedup_vs_hmx = t_hmx / t_ours;
        let slowdown_vs_bound = t_ours / t_bound;
        // Paper: 9.65-19.04x vs baseline; 1.82-3.45x vs HMX-layout-only;
        // ~27% slower than the no-dequant bound on average.
        assert!(
            (8.0..21.0).contains(&speedup_vs_baseline),
            "vs baseline {speedup_vs_baseline}"
        );
        assert!(
            (1.5..4.0).contains(&speedup_vs_hmx),
            "vs hmx layout {speedup_vs_hmx}"
        );
        assert!(
            (1.05..2.2).contains(&slowdown_vs_bound),
            "vs bound {slowdown_vs_bound}"
        );
    }

    #[test]
    fn gemm_latency_nearly_flat_in_batch() {
        // The free-compute insight (Section 3.2): batch 16 GEMM costs about
        // the same as batch 1 because the HMX tile count is unchanged and
        // dequantization dominates.
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let wall = |c: &mut NpuContext, m: usize| {
            let (k, n) = (2048, 2048);
            let qm = QuantizedMatrix {
                k,
                n,
                scheme: QuantScheme::Q4_0,
                layout: WeightLayout::HmxTileGroups,
                bytes: Vec::new(),
            };
            let prepared = prepare_weights(c, &qm, DequantVariant::CoalescedLut).unwrap();
            let cfg = GemmConfig {
                m,
                k,
                n,
                scheme: QuantScheme::Q4_0,
                variant: DequantVariant::CoalescedLut,
                threads: 6,
            };
            let r = gemm_mixed(c, &cfg, &prepared, &[]);
            c.ddr_free(prepared.buf);
            r.cost.wall_secs
        };
        let t1 = wall(&mut c, 1);
        let t16 = wall(&mut c, 16);
        let ratio = t16 / t1;
        assert!(ratio < 1.25, "batch-16 GEMM should be nearly free: {ratio}");
    }

    #[test]
    fn engine_breakdown_shows_dma_bound_for_no_dequant() {
        let mut c = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
        let qm = QuantizedMatrix {
            k: 2048,
            n: 2048,
            scheme: QuantScheme::Q4_0,
            layout: WeightLayout::HmxTileGroups,
            bytes: Vec::new(),
        };
        let prepared = prepare_weights(&mut c, &qm, DequantVariant::NoDequantBound).unwrap();
        let cfg = GemmConfig {
            m: 1,
            k: 2048,
            n: 2048,
            scheme: QuantScheme::Q4_0,
            variant: DequantVariant::NoDequantBound,
            threads: 6,
        };
        let r = gemm_mixed(&mut c, &cfg, &prepared, &[]);
        assert!(r.cost.engine(Engine::Dma) > r.cost.engine(Engine::Hvx));
        assert!((r.cost.wall_secs - r.cost.engine(Engine::Dma)).abs() < 1e-12);
    }
}
