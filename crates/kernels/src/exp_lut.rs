//! Exponential kernels: the paper's `vgather` FP16 LUT and the polynomial
//! baselines it replaces (Section 5.2.1).
//!
//! Safe softmax guarantees non-positive inputs, so only `x <= 0` needs
//! coverage: 32768 FP16 bit patterns, 64 KiB — exactly within `vgather`'s
//! 65535-byte offset reach. The table is precomputed at >= 32-bit precision
//! during initialization (0.8% of TCM), so LUT-exp is *more* accurate than a
//! 16-bit polynomial while costing one masked shift plus one gather per 64
//! elements.

use hexsim::f16::F16;
use hexsim::hvx::{HvxVec, HVX_HALVES};
use hexsim::prelude::*;

/// Which exponential implementation a softmax/attention kernel uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExpMethod {
    /// Upcast to FP32, polynomial `exp2` with exponent stuffing, downcast.
    F32Poly,
    /// FP16 polynomial `exp2` (degree 3) — faster but least accurate.
    F16Poly,
    /// The paper's 64 KiB FP16 LUT via `vgather`.
    Lut16,
}

impl ExpMethod {
    /// Label used in figures and reports.
    pub fn label(self) -> &'static str {
        match self {
            ExpMethod::F32Poly => "F32 exp",
            ExpMethod::F16Poly => "F16 exp",
            ExpMethod::Lut16 => "LUT16 exp",
        }
    }
}

/// Number of LUT entries (all FP16 bit patterns with the sign bit cleared).
pub const LUT_ENTRIES: usize = 32768;
/// LUT footprint in bytes (64 KiB, ~0.8% of the 8 MiB TCM).
pub const LUT_BYTES: usize = LUT_ENTRIES * 2;

/// The precomputed `exp` lookup table resident in TCM.
pub struct ExpLut16 {
    /// TCM base address of the 64 KiB table.
    pub base: TcmAddr,
    /// Hoisted sign-clear mask register.
    mask: HvxVec,
}

impl ExpLut16 {
    /// Allocates and fills the table: entry `m` (an FP16 bit pattern with
    /// sign cleared) holds `exp(-value(m))` computed in f64 and rounded once
    /// to FP16. Runs at system initialization; charges no inference-time
    /// cost (paper Section 5.2.1).
    pub fn build(ctx: &mut NpuContext) -> SimResult<Self> {
        let base = ctx.tcm_alloc(LUT_BYTES as u32, 128)?;
        let mut bytes = vec![0u8; LUT_BYTES];
        for m in 0..LUT_ENTRIES as u16 {
            let magnitude = F16(m).to_f32() as f64;
            let value = F16::from_f64((-magnitude).exp());
            bytes[2 * m as usize..2 * m as usize + 2].copy_from_slice(&value.0.to_le_bytes());
        }
        ctx.tcm_poke(base, &bytes);
        let mask = HvxVec::splat_h(0x7fff);
        Ok(ExpLut16 { base, mask })
    }

    /// Computes `exp` of 64 FP16 lanes (all expected `<= 0`) via `vgather`:
    /// clear the sign bit, shift left one bit to form byte offsets, gather.
    /// Three instructions, one of which is the 24-48-packet gather.
    pub fn exp_vec(&self, ctx: &mut NpuContext, v: &HvxVec) -> HvxVec {
        let magnitude = ctx.vand_b(v, &self.mask);
        let offsets = ctx.vshl_h(&magnitude, 1);
        ctx.vgather_h(self.base, &offsets, true)
    }

    /// Scalar view of the table for tile-level kernels: exact same entry a
    /// `vgather` lane would fetch for input `x`.
    pub fn exp_scalar(&self, ctx: &NpuContext, x: F16) -> F16 {
        let m = (x.0 & 0x7fff) as usize;
        let bytes = ctx.tcm_peek(self.base.offset(2 * m as u32), 2);
        F16(u16::from_le_bytes([bytes[0], bytes[1]]))
    }
}

/// FP32 polynomial exponential of 64 FP16 lanes.
///
/// Functional result: correctly rounded through f32 (the paper's F32 path
/// carries >= 1e-7 relative error, below FP16 resolution). Cost: widen +
/// two 20-instruction polynomial chains + narrow, plus 10 modeled stall
/// cycles for the sequential dependences VLIW cannot hide (Section 5.2.1).
pub fn exp_f32_vec(ctx: &mut NpuContext, v: &HvxVec) -> HvxVec {
    let (lo, hi) = ctx.vcvt_hf_sf(v);
    // Modeled polynomial: range reduction, degree-5 poly, exponent insert
    // (20 instructions per 32-lane register; two registers).
    ctx.cost.charge_hvx_packets(2 * 20);
    ctx.stall(10);
    let mut elo = HvxVec::zero();
    let mut ehi = HvxVec::zero();
    for i in 0..32 {
        elo.set_sf(i, lo.get_sf(i).exp());
        ehi.set_sf(i, hi.get_sf(i).exp());
    }
    ctx.vcvt_sf_hf(&elo, &ehi)
}

/// FP16 polynomial exponential of 64 lanes: `exp2`-based with a degree-3
/// Taylor expansion of the fractional part, all arithmetic in genuine FP16
/// (so its truncation error is visible to accuracy tests, matching the
/// paper's note that the LUT beats the 16-bit polynomial on accuracy).
pub fn exp_f16_vec(ctx: &mut NpuContext, v: &HvxVec) -> HvxVec {
    // Cost: ~16 FP16 instructions (scale by log2e, floor split, 3-term
    // Horner, exponent stuffing) + qfloat converts + 20 stall cycles from
    // the serial Horner chain.
    let qf = 4 * ctx.device().qf16_convert_ops();
    ctx.cost.charge_hvx_packets(16 + qf);
    ctx.stall(20);
    let mut out = HvxVec::zero();
    for i in 0..HVX_HALVES {
        out.set_hf(i, exp_f16_scalar(v.get_hf(i)));
    }
    out
}

/// Scalar FP16 polynomial `exp` (the per-lane semantics of
/// [`exp_f16_vec`]), public so tile-level kernels can share it.
pub fn exp_f16_scalar(x: F16) -> F16 {
    if x.is_nan() {
        return F16::NAN;
    }
    let xf = x.to_f32();
    if xf > 0.0 {
        // Safe softmax never produces positive inputs; saturate like the
        // kernel's clamp would.
        return F16::from_f32(xf.exp());
    }
    // y = x * log2(e), split into integer k and fraction f in [0, 1).
    let log2e = F16::from_f32(std::f32::consts::LOG2_E);
    let y = x.mul(log2e);
    let yf = y.to_f32();
    let k = yf.floor();
    if k < -25.0 {
        return F16::ZERO;
    }
    let f = F16::from_f32(yf - k);
    // 2^f ~= 1 + f*(c1 + f*(c2 + f*c3)) evaluated in FP16 (Horner), with
    // coefficients fitted for [0,1): c1=0.6931, c2=0.2416, c3=0.0520.
    let c1 = F16::from_f32(std::f32::consts::LN_2);
    let c2 = F16::from_f32(0.240_226_5);
    let c3 = F16::from_f32(0.052_0);
    let mut p = c3.mul(f).add(c2);
    p = p.mul(f).add(c1);
    p = p.mul(f).add(F16::ONE);
    // Multiply by 2^k via exponent-field arithmetic (exact).
    scale_by_pow2(p, k as i32)
}

/// Multiplies an FP16 value by `2^k` exactly via exponent manipulation,
/// falling to subnormals or zero on underflow.
fn scale_by_pow2(v: F16, k: i32) -> F16 {
    F16::from_f32(v.to_f32() * (k as f32).exp2())
}

/// Charges the cost of one 64-lane exponential without computing it, for
/// tile-level kernels that evaluate the same per-lane function scalar-side.
/// Kept in exact agreement with the vector kernels (see the
/// `charge_exp_matches_vector_kernels` test).
pub fn charge_exp(ctx: &mut NpuContext, method: ExpMethod) {
    match method {
        ExpMethod::F32Poly => {
            // Widen + 2 x 20-instruction polynomial + narrow + stalls.
            ctx.cost.charge_hvx_packets(1 + 40 + 1);
            ctx.stall(10);
        }
        ExpMethod::F16Poly => {
            let qf = 4 * ctx.device().qf16_convert_ops();
            ctx.cost.charge_hvx_packets(16 + qf);
            ctx.stall(20);
        }
        ExpMethod::Lut16 => {
            // Mask + shift + pipelined vgather.
            ctx.cost.charge_hvx_packets(2);
            ctx.cost.charge_vgather(true);
        }
    }
}

/// Dispatches one 64-lane exponential by method.
pub fn exp_vec(ctx: &mut NpuContext, lut: &ExpLut16, method: ExpMethod, v: &HvxVec) -> HvxVec {
    match method {
        ExpMethod::F32Poly => exp_f32_vec(ctx, v),
        ExpMethod::F16Poly => exp_f16_vec(ctx, v),
        ExpMethod::Lut16 => lut.exp_vec(ctx, v),
    }
}

/// Scalar dispatch used by tile-level kernels (identical per-lane values).
pub fn exp_scalar(ctx: &NpuContext, lut: &ExpLut16, method: ExpMethod, x: F16) -> F16 {
    match method {
        ExpMethod::F32Poly => F16::from_f32(x.to_f32().exp()),
        ExpMethod::F16Poly => exp_f16_scalar(x),
        ExpMethod::Lut16 => lut.exp_scalar(ctx, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> NpuContext {
        NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
    }

    #[test]
    fn lut_fits_paper_budget() {
        assert_eq!(LUT_BYTES, 64 * 1024);
        let frac = LUT_BYTES as f64 / (8.0 * 1024.0 * 1024.0);
        assert!((frac - 0.0078).abs() < 0.001, "~0.8% of TCM");
    }

    #[test]
    fn lut_exp_matches_f64_exp_to_half_ulp() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        for bits in [0x0000u16, 0x3c00, 0x4200, 0x4900, 0x5640, 0x7bff] {
            let x = F16(bits | 0x8000); // Negative input.
            let got = lut.exp_scalar(&c, x);
            let expect = F16::from_f64((x.to_f32() as f64).exp());
            assert_eq!(got, expect, "x={}", x.to_f32());
        }
        // exp(0) = 1 exactly.
        assert_eq!(lut.exp_scalar(&c, F16::ZERO), F16::ONE);
        // exp(-inf) = 0.
        assert_eq!(lut.exp_scalar(&c, F16::NEG_INFINITY), F16::ZERO);
    }

    #[test]
    fn lut_vector_matches_scalar() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let mut v = HvxVec::zero();
        for i in 0..HVX_HALVES {
            v.set_hf(i, F16::from_f32(-(i as f32) * 0.17));
        }
        let out = lut.exp_vec(&mut c, &v);
        for i in 0..HVX_HALVES {
            assert_eq!(out.get_hf(i), lut.exp_scalar(&c, v.get_hf(i)), "lane {i}");
        }
    }

    #[test]
    fn vector_gather_cost_is_three_instructions() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let v = HvxVec::splat_h(F16::from_f32(-1.0).0);
        let before = c.cost.counters().hvx_instructions;
        let gathers = c.cost.counters().vgathers;
        let _ = lut.exp_vec(&mut c, &v);
        // mask + shift + gather(24 packets pipelined).
        assert_eq!(c.cost.counters().vgathers - gathers, 1);
        assert_eq!(c.cost.counters().hvx_instructions - before, 2 + 24);
    }

    #[test]
    fn f16_poly_is_close_but_less_accurate_than_lut() {
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let mut max_err_poly = 0.0f64;
        let mut max_err_lut = 0.0f64;
        for i in 1..2000 {
            let x = F16::from_f32(-(i as f32) * 0.005);
            let exact = (x.to_f32() as f64).exp();
            let poly = exp_f16_scalar(x).to_f32() as f64;
            let lutv = lut.exp_scalar(&c, x).to_f32() as f64;
            max_err_poly = max_err_poly.max(((poly - exact) / exact).abs());
            max_err_lut = max_err_lut.max(((lutv - exact) / exact).abs());
        }
        // Paper: LUT (32-bit precomputation) is more accurate than the
        // 16-bit polynomial.
        assert!(
            max_err_lut < max_err_poly,
            "lut {max_err_lut} poly {max_err_poly}"
        );
        // And the polynomial is still a usable exp (sub-2% relative error).
        assert!(max_err_poly < 0.02, "poly max rel err {max_err_poly}");
        // LUT stays within one FP16 ULP (~1e-3 relative).
        assert!(max_err_lut < 1.2e-3, "lut max rel err {max_err_lut}");
    }

    #[test]
    fn f32_path_matches_libm_closely() {
        let mut c = ctx();
        let mut v = HvxVec::zero();
        for i in 0..HVX_HALVES {
            v.set_hf(i, F16::from_f32(-(i as f32) * 0.1));
        }
        let out = exp_f32_vec(&mut c, &v);
        for i in 0..HVX_HALVES {
            let expect = F16::from_f32(v.get_hf(i).to_f32().exp());
            assert_eq!(out.get_hf(i), expect, "lane {i}");
        }
    }

    #[test]
    fn per_element_cost_ordering_matches_figure_14() {
        // LUT < F16 poly < F32 poly per element, the premise of Figure 14.
        let mut c = ctx();
        let lut = ExpLut16::build(&mut c).unwrap();
        let v = HvxVec::splat_h(F16::from_f32(-0.5).0);
        let cost_of = |c: &mut NpuContext, m: ExpMethod| {
            let t0 = c.cost.engine_secs(hexsim::cost::Engine::Hvx);
            let _ = exp_vec(c, &lut, m, &v);
            c.cost.engine_secs(hexsim::cost::Engine::Hvx) - t0
        };
        let t_lut = cost_of(&mut c, ExpMethod::Lut16);
        let t_f16 = cost_of(&mut c, ExpMethod::F16Poly);
        let t_f32 = cost_of(&mut c, ExpMethod::F32Poly);
        assert!(t_lut < t_f16 && t_f16 < t_f32);
        let f32_speedup = t_f32 / t_lut;
        let f16_speedup = t_f16 / t_lut;
        // Raw per-register bounds; end-to-end softmax dilutes these toward
        // the paper's 1.26-2.19x (F32) and <=1.60x (F16).
        assert!((1.2..2.6).contains(&f32_speedup), "f32/lut {f32_speedup}");
        assert!((1.1..1.8).contains(&f16_speedup), "f16/lut {f16_speedup}");
    }

    #[test]
    fn exp_f16_scalar_edge_cases() {
        assert_eq!(exp_f16_scalar(F16::ZERO), F16::ONE);
        assert_eq!(exp_f16_scalar(F16::NEG_INFINITY), F16::ZERO);
        assert!(exp_f16_scalar(F16::NAN).is_nan());
        // Very negative underflows to zero.
        assert_eq!(exp_f16_scalar(F16::from_f32(-30.0)), F16::ZERO);
    }

    #[test]
    fn charge_exp_matches_vector_kernels() {
        for method in [ExpMethod::F32Poly, ExpMethod::F16Poly, ExpMethod::Lut16] {
            let mut c1 = ctx();
            let lut = ExpLut16::build(&mut c1).unwrap();
            let v = HvxVec::splat_h(F16::from_f32(-1.0).0);
            let before = c1.cost.counters().hvx_instructions;
            let _ = exp_vec(&mut c1, &lut, method, &v);
            let vec_charge = c1.cost.counters().hvx_instructions - before;

            let mut c2 = ctx();
            let before = c2.cost.counters().hvx_instructions;
            charge_exp(&mut c2, method);
            let plan_charge = c2.cost.counters().hvx_instructions - before;
            assert_eq!(vec_charge, plan_charge, "{method:?}");
        }
    }

    #[test]
    fn lut_build_charges_no_inference_cost() {
        let mut c = ctx();
        let _ = ExpLut16::build(&mut c).unwrap();
        assert_eq!(c.cost.counters().hvx_instructions, 0);
        assert_eq!(c.cost.counters().dma_bytes, 0);
    }
}
