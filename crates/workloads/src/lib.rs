//! Synthetic verifiable workloads for the test-time-scaling experiments.
//!
//! The paper evaluates on MATH500 and GSM8K (verifiable math), WinoGrande
//! and MMLU (multiple choice) and Wikitext-2 (perplexity). Those datasets
//! are upstream artifacts of specific checkpoints; this reproduction
//! replaces them with *generators* that preserve the properties the
//! experiments depend on:
//!
//! - [`mathgen`] — arithmetic/algebra/word problems with exact integer
//!   answers (so Best-of-N, beam search and self-consistency have a ground
//!   truth to verify against) and a controllable difficulty distribution
//!   (whose spread is what gives parallel-scaling curves their Figure 5
//!   saturation shape).
//! - [`choice`] — k-way multiple-choice items with latent signal strength,
//!   the WinoGrande/MMLU analog used by the quantization accuracy tables.
//! - [`eval`] — pass@1 and accuracy harnesses with deterministic seeding.

pub mod choice;
pub mod eval;
pub mod mathgen;

pub use eval::pass_at_1;
pub use mathgen::{DatasetKind, MathTask, TaskGenerator};
