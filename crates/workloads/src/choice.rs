//! K-way multiple-choice evaluation items (WinoGrande / MMLU analogs).
//!
//! Each item carries a latent *signal strength*: how strongly the correct
//! option is preferred by a fully capable model. An agent with capability
//! `c` observes `signal * c + noise` per option and picks the argmax, so
//! accuracy is a smooth, monotone function of capability — exactly the
//! instrument needed to translate measured quantization damage into the
//! paper's Table 1/4/5 accuracy deltas.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One multiple-choice item.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChoiceItem {
    /// Stable identifier.
    pub id: u64,
    /// Number of options (2 for WinoGrande-like, 4 for MMLU-like).
    pub options: usize,
    /// Index of the correct option.
    pub correct: usize,
    /// Latent signal strength in `[0, inf)`; higher = easier.
    pub signal: f64,
}

/// Benchmark profile for choice items.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChoiceKind {
    /// Binary commonsense items (WinoGrande analog: ~62-65% for small
    /// models, i.e. weak signal).
    WinoGrandeLike,
    /// Four-way knowledge items (MMLU analog: ~35% for 1.5B models,
    /// barely above the 25% floor).
    MmluLike,
}

impl ChoiceKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ChoiceKind::WinoGrandeLike => "WinoGrande",
            ChoiceKind::MmluLike => "MMLU",
        }
    }

    /// Option count for the profile.
    pub fn options(self) -> usize {
        match self {
            ChoiceKind::WinoGrandeLike => 2,
            ChoiceKind::MmluLike => 4,
        }
    }

    /// Mean latent signal, calibrated so a capability-1.0 model scores in
    /// the paper's Table 4 range (WinoGrande ~64.6%, MMLU ~34.8% for
    /// Qwen2.5-1.5B at F16).
    fn mean_signal(self) -> f64 {
        match self {
            ChoiceKind::WinoGrandeLike => 0.53,
            ChoiceKind::MmluLike => 0.33,
        }
    }
}

/// Generates a deterministic item set.
pub fn generate_items(kind: ChoiceKind, n: usize, seed: u64) -> Vec<ChoiceItem> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC401CE);
    (0..n as u64)
        .map(|id| {
            let options = kind.options();
            // Exponentially distributed signal around the profile mean.
            let u: f64 = rng.gen_range(1e-6..1.0f64);
            let signal = -u.ln() * kind.mean_signal();
            ChoiceItem {
                id,
                options,
                correct: rng.gen_range(0..options),
                signal,
            }
        })
        .collect()
}

/// Answers an item set with capability `c` (1.0 = the unquantized model)
/// and returns accuracy in percent.
pub fn evaluate(items: &[ChoiceItem], capability: f64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut correct = 0usize;
    for item in items {
        let mut best = f64::NEG_INFINITY;
        let mut pick = 0usize;
        for o in 0..item.options {
            let mean = if o == item.correct {
                item.signal * capability
            } else {
                0.0
            };
            // Gumbel-ish noise via inverse transform of a logistic.
            let u: f64 = rng.gen_range(1e-9..1.0 - 1e-9);
            let noise = (u / (1.0 - u)).ln() * 0.5;
            let score = mean + noise;
            if score > best {
                best = score;
                pick = o;
            }
        }
        if pick == item.correct {
            correct += 1;
        }
    }
    correct as f64 / items.len() as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_capability_lands_in_paper_range() {
        let wino = generate_items(ChoiceKind::WinoGrandeLike, 4000, 1);
        let mmlu = generate_items(ChoiceKind::MmluLike, 4000, 2);
        let wino_acc = evaluate(&wino, 1.0, 3);
        let mmlu_acc = evaluate(&mmlu, 1.0, 4);
        // Paper Table 4 F16 column: WinoGrande 64.6, MMLU 34.8.
        assert!((58.0..70.0).contains(&wino_acc), "wino {wino_acc}");
        assert!((31.0..40.0).contains(&mmlu_acc), "mmlu {mmlu_acc}");
    }

    #[test]
    fn zero_capability_hits_chance_floor() {
        let wino = generate_items(ChoiceKind::WinoGrandeLike, 4000, 5);
        let mmlu = generate_items(ChoiceKind::MmluLike, 4000, 6);
        let wino_acc = evaluate(&wino, 0.0, 7);
        let mmlu_acc = evaluate(&mmlu, 0.0, 8);
        assert!((45.0..55.0).contains(&wino_acc), "wino {wino_acc}");
        assert!((20.0..30.0).contains(&mmlu_acc), "mmlu {mmlu_acc}");
    }

    #[test]
    fn accuracy_is_monotone_in_capability() {
        let items = generate_items(ChoiceKind::WinoGrandeLike, 4000, 9);
        let lo = evaluate(&items, 0.3, 10);
        let mid = evaluate(&items, 0.8, 10);
        let hi = evaluate(&items, 1.5, 10);
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
    }

    #[test]
    fn small_capability_deltas_produce_small_accuracy_deltas() {
        // Table 4's point: tile grouping changes accuracy by well under a
        // percentage point relative to conventional grouping.
        let items = generate_items(ChoiceKind::WinoGrandeLike, 20_000, 11);
        let a = evaluate(&items, 0.97, 12);
        let b = evaluate(&items, 0.96, 12);
        assert!((a - b).abs() < 1.5, "delta {}", (a - b).abs());
    }
}
