//! Synthetic verifiable math task generation (MATH500 / GSM8K analogs).
//!
//! Four problem families with exact integer answers: arithmetic chains,
//! linear equations, modular arithmetic, and templated word problems.
//! Difficulty is a scalar in `[0, 1]` controlling operand magnitude and
//! step count; the two dataset profiles differ in their difficulty
//! distributions (MATH500-like skews hard, GSM8K-like skews easy), which
//! is what makes the paper's GSM8K accuracies uniformly higher.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which benchmark profile to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Competition-math profile: hard-skewed difficulty (MATH500 analog).
    Math500Like,
    /// Grade-school profile: easy-skewed difficulty (GSM8K analog).
    Gsm8kLike,
}

impl DatasetKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Math500Like => "MATH500",
            DatasetKind::Gsm8kLike => "GSM8K",
        }
    }
}

/// One verifiable task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MathTask {
    /// Stable identifier.
    pub id: u64,
    /// Natural-language statement (ASCII).
    pub statement: String,
    /// Exact integer answer.
    pub answer: i64,
    /// Difficulty in `[0, 1]`.
    pub difficulty: f64,
    /// Reference solution length in reasoning steps.
    pub steps: usize,
}

impl MathTask {
    /// Verifies a proposed answer (the outcome check Best-of-N relies on).
    pub fn verify(&self, proposed: i64) -> bool {
        proposed == self.answer
    }
}

/// Deterministic task generator for one dataset profile.
pub struct TaskGenerator {
    kind: DatasetKind,
    rng: StdRng,
    next_id: u64,
}

impl TaskGenerator {
    /// Creates a generator with a seed (identical seeds yield identical
    /// task streams).
    pub fn new(kind: DatasetKind, seed: u64) -> Self {
        TaskGenerator {
            kind,
            rng: StdRng::seed_from_u64(seed ^ 0x4D41_5448_5345_4544),
            next_id: 0,
        }
    }

    /// Samples the dataset's difficulty distribution.
    fn sample_difficulty(&mut self) -> f64 {
        let u: f64 = self.rng.gen();
        match self.kind {
            // Hard-skewed: density rising toward 1.
            DatasetKind::Math500Like => u.sqrt(),
            // Easy-skewed: density falling from 0.
            DatasetKind::Gsm8kLike => u * u,
        }
    }

    /// Generates the next task.
    pub fn next_task(&mut self) -> MathTask {
        let difficulty = self.sample_difficulty();
        let id = self.next_id;
        self.next_id += 1;
        let family = self.rng.gen_range(0..4);

        match family {
            0 => self.arith_chain(id, difficulty),
            1 => self.linear_eq(id, difficulty),
            2 => self.modular(id, difficulty),
            _ => self.word_problem(id, difficulty),
        }
    }

    /// Generates `n` tasks.
    pub fn take(&mut self, n: usize) -> Vec<MathTask> {
        (0..n).map(|_| self.next_task()).collect()
    }

    fn magnitude(&mut self, difficulty: f64) -> i64 {
        let max = 5.0 + difficulty * 95.0;
        self.rng.gen_range(2..=(max as i64).max(3))
    }

    fn arith_chain(&mut self, id: u64, difficulty: f64) -> MathTask {
        let ops = 2 + (difficulty * 5.0) as usize;
        let mut value = self.magnitude(difficulty);
        let mut statement = format!("Compute: {value}");
        for _ in 0..ops {
            let operand = self.magnitude(difficulty);
            match self.rng.gen_range(0..3) {
                0 => {
                    statement.push_str(&format!(" + {operand}"));
                    value += operand;
                }
                1 => {
                    statement.push_str(&format!(" - {operand}"));
                    value -= operand;
                }
                _ => {
                    let small = 2 + operand % 8;
                    statement.push_str(&format!(" * {small}"));
                    value *= small;
                }
            }
        }
        MathTask {
            id,
            statement,
            answer: value,
            difficulty,
            steps: ops,
        }
    }

    fn linear_eq(&mut self, id: u64, difficulty: f64) -> MathTask {
        // a*x + b = c with integer solution x.
        let a = 1 + self.magnitude(difficulty) % 12;
        let x = self.magnitude(difficulty);
        let b = self.magnitude(difficulty);
        let c = a * x + b;
        MathTask {
            id,
            statement: format!("Solve for x: {a}*x + {b} = {c}"),
            answer: x,
            difficulty,
            steps: 2 + (difficulty * 3.0) as usize,
        }
    }

    fn modular(&mut self, id: u64, difficulty: f64) -> MathTask {
        let base = self.magnitude(difficulty) + 10;
        let exp = 2 + (difficulty * 6.0) as i64;
        let modulus = 7 + self.magnitude(difficulty) % 90;
        let mut acc: i64 = 1;
        for _ in 0..exp {
            acc = (acc * (base % modulus)) % modulus;
        }
        MathTask {
            id,
            statement: format!("Find {base}^{exp} mod {modulus}"),
            answer: acc,
            difficulty,
            steps: exp as usize,
        }
    }

    fn word_problem(&mut self, id: u64, difficulty: f64) -> MathTask {
        // GSM-style two-entity template with 2-4 computation steps.
        let start = self.magnitude(difficulty) * 3;
        let bought = self.magnitude(difficulty);
        let per_box = 1 + self.magnitude(difficulty) % 10;
        let given = self.magnitude(difficulty).min(start);
        let answer = start + bought * per_box - given;
        MathTask {
            id,
            statement: format!(
                "Ava has {start} marbles. She buys {bought} boxes with {per_box} \
                 marbles each, then gives {given} marbles away. How many marbles \
                 does she have now?"
            ),
            answer,
            difficulty,
            steps: 3 + (difficulty * 2.0) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TaskGenerator::new(DatasetKind::Math500Like, 7).take(20);
        let b = TaskGenerator::new(DatasetKind::Math500Like, 7).take(20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.statement, y.statement);
            assert_eq!(x.answer, y.answer);
        }
    }

    #[test]
    fn verify_accepts_only_exact_answer() {
        let t = TaskGenerator::new(DatasetKind::Gsm8kLike, 1).next_task();
        assert!(t.verify(t.answer));
        assert!(!t.verify(t.answer + 1));
    }

    #[test]
    fn math500_skews_harder_than_gsm8k() {
        let hard: f64 = TaskGenerator::new(DatasetKind::Math500Like, 3)
            .take(500)
            .iter()
            .map(|t| t.difficulty)
            .sum::<f64>()
            / 500.0;
        let easy: f64 = TaskGenerator::new(DatasetKind::Gsm8kLike, 3)
            .take(500)
            .iter()
            .map(|t| t.difficulty)
            .sum::<f64>()
            / 500.0;
        assert!(
            hard > easy + 0.2,
            "MATH500-like mean {hard} vs GSM8K-like {easy}"
        );
    }

    #[test]
    fn arith_chain_answers_check_out() {
        // Spot-verify generated statements by re-parsing simple chains.
        let tasks = TaskGenerator::new(DatasetKind::Gsm8kLike, 11).take(100);
        for t in &tasks {
            if let Some(expr) = t.statement.strip_prefix("Compute: ") {
                let mut tokens = expr.split_whitespace();
                let mut value: i64 = tokens.next().unwrap().parse().unwrap();
                while let (Some(op), Some(operand)) = (tokens.next(), tokens.next()) {
                    let x: i64 = operand.parse().unwrap();
                    match op {
                        "+" => value += x,
                        "-" => value -= x,
                        "*" => value *= x,
                        other => panic!("unexpected op {other}"),
                    }
                }
                assert_eq!(value, t.answer, "statement: {}", t.statement);
            }
        }
    }

    #[test]
    fn steps_grow_with_difficulty() {
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 5).take(400);
        let easy_steps: f64 = tasks
            .iter()
            .filter(|t| t.difficulty < 0.3)
            .map(|t| t.steps as f64)
            .sum::<f64>()
            / tasks.iter().filter(|t| t.difficulty < 0.3).count().max(1) as f64;
        let hard_steps: f64 = tasks
            .iter()
            .filter(|t| t.difficulty > 0.7)
            .map(|t| t.steps as f64)
            .sum::<f64>()
            / tasks.iter().filter(|t| t.difficulty > 0.7).count().max(1) as f64;
        assert!(hard_steps > easy_steps);
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 2).take(10);
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }
}
