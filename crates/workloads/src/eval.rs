//! Evaluation harnesses: pass@1 and accuracy aggregation.

use crate::mathgen::MathTask;

/// pass@1 accuracy (percent) of proposed answers over a task set.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pass_at_1(tasks: &[MathTask], answers: &[i64]) -> f64 {
    assert_eq!(tasks.len(), answers.len());
    if tasks.is_empty() {
        return 0.0;
    }
    let correct = tasks
        .iter()
        .zip(answers)
        .filter(|(t, &a)| t.verify(a))
        .count();
    correct as f64 / tasks.len() as f64 * 100.0
}

/// Mean and a crude 95% confidence half-width (normal approximation) of a
/// Bernoulli accuracy estimate given `correct` out of `n`.
pub fn accuracy_ci(correct: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 0.0);
    }
    let p = correct as f64 / n as f64;
    let half = 1.96 * (p * (1.0 - p) / n as f64).sqrt();
    (p * 100.0, half * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mathgen::{DatasetKind, TaskGenerator};

    #[test]
    fn pass_at_1_counts_exact_matches() {
        let tasks = TaskGenerator::new(DatasetKind::Gsm8kLike, 1).take(4);
        let mut answers: Vec<i64> = tasks.iter().map(|t| t.answer).collect();
        assert_eq!(pass_at_1(&tasks, &answers), 100.0);
        answers[0] += 1;
        assert_eq!(pass_at_1(&tasks, &answers), 75.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let (_, w_small) = accuracy_ci(50, 100);
        let (_, w_large) = accuracy_ci(500, 1000);
        assert!(w_large < w_small);
    }

    #[test]
    fn empty_task_set_is_zero() {
        assert_eq!(pass_at_1(&[], &[]), 0.0);
    }
}
