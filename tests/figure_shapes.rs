//! Integration checks that every regenerated exhibit preserves the shape
//! of the paper's result: who wins, by roughly what factor, and where the
//! crossovers fall (the reproduction criteria from DESIGN.md).

use mathsynth::mathgen::DatasetKind;
use npuscale::experiments;
use npuscale::pareto::Method;
use npuscale_repro::prelude::*;

#[test]
fn fig5_accuracy_is_monotone_in_budget() {
    let rows = experiments::fig5_rows(2);
    for model in ["Llama3.2-1B-Instruct", "Qwen2.5-1.5B-Instruct"] {
        let series: Vec<f64> = rows
            .iter()
            .filter(|r| r.model == model)
            .map(|r| r.accuracy_pct)
            .collect();
        assert_eq!(series.len(), 7);
        for w in series.windows(2) {
            assert!(w[1] >= w[0] - 2.0, "{model}: non-monotone {series:?}");
        }
        // Budget 16 delivers a large gain over budget 1 (paper: ~2-3x).
        assert!(series[6] > series[0] * 1.7, "{model}: {series:?}");
    }
}

#[test]
fn fig8_softmax_share_grows_and_dominates() {
    let rows = experiments::fig8_rows();
    for w in rows.windows(2) {
        assert!(w[1].softmax_pct > w[0].softmax_pct);
        assert!(w[1].load_store_pct < w[0].load_store_pct);
    }
    assert!(rows.last().unwrap().softmax_pct > 75.0);
}

#[test]
fn fig11_throughput_ordering() {
    let rows = experiments::fig11_rows();
    // 3B models are absent on 8G2 and present elsewhere.
    let gate = rows
        .iter()
        .filter(|r| r.device == "8G2" && (r.model == "Q3" || r.model == "L3"))
        .all(|r| r.tokens_per_sec.is_none());
    assert!(gate, "8G2 must reject 3B models");
    // Throughput at batch 16 exceeds batch 1 everywhere it runs.
    for device in ["8G2", "8G3", "8G4"] {
        for model in ["L1", "Q1.5"] {
            let get = |b: usize| {
                rows.iter()
                    .find(|r| r.device == device && r.model == model && r.batch == b)
                    .and_then(|r| r.tokens_per_sec)
                    .unwrap()
            };
            assert!(get(16) > 4.0 * get(1), "{device}/{model}");
        }
    }
}

#[test]
fn fig13_crossover_gpu_vs_npu() {
    let backends = figure13_backends(&DeviceProfile::v75());
    let rows = experiments::fig13_decode_rows(&backends);
    let get = |system: &str, batch: usize| {
        rows.iter()
            .find(|r| r.system == system && r.model == "Q1.5" && r.batch == batch)
            .map(|r| r.tokens_per_sec)
            .unwrap()
    };
    // Paper: GPU decodes faster at batch 1; ours wins at large batch.
    assert!(get("llama.cpp-OpenCL", 1) > get("Ours", 1) * 0.85);
    assert!(get("Ours", 16) > get("llama.cpp-OpenCL", 16) * 1.5);

    // Prefill: ours consistently above the GPU.
    let prefill = experiments::fig13_prefill_rows(&backends);
    for prompt in [512usize, 1024, 2048] {
        let ours = prefill
            .iter()
            .find(|r| r.system == "Ours" && r.model == "Q1.5" && r.prompt_len == prompt)
            .unwrap();
        let gpu = prefill
            .iter()
            .find(|r| r.system == "llama.cpp-OpenCL" && r.model == "Q1.5" && r.prompt_len == prompt)
            .unwrap();
        assert!(
            ours.tokens_per_sec > gpu.tokens_per_sec,
            "prompt {prompt}: ours {} vs gpu {}",
            ours.tokens_per_sec,
            gpu.tokens_per_sec
        );
    }
}

#[test]
fn fig16_dmabuf_constant_and_rss_mild() {
    let rows = experiments::fig16_rows(&npu_backend(&DeviceProfile::v75()));
    let q15: Vec<_> = rows.iter().filter(|r| r.model == "Q1.5").collect();
    let dmabuf0 = q15[0].dmabuf_mib;
    for r in &q15 {
        assert!(
            (r.dmabuf_mib - dmabuf0).abs() < 1e-9,
            "dmabuf must not vary"
        );
        assert!(r.cpu_util_pct <= 400.0);
    }
    let rss_first = q15.first().unwrap().cpu_rss_mib;
    let rss_last = q15.last().unwrap().cpu_rss_mib;
    assert!(rss_last > rss_first);
    assert!(rss_last < rss_first * 1.4, "RSS growth must stay mild");
}

#[test]
fn fig17_prompt_length_effect_is_mild() {
    let rows = experiments::fig17_rows(&npu_backend(&DeviceProfile::v75()));
    for model in ["Q1.5", "Q3"] {
        for batch in [1usize, 8] {
            let get = |p: usize| {
                rows.iter()
                    .find(|r| r.model == model && r.batch == batch && r.prompt_len == p)
                    .map(|r| r.tokens_per_sec)
                    .unwrap()
            };
            let drop = 1.0 - get(4096) / get(512);
            assert!((0.0..0.5).contains(&drop), "{model}@b{batch}: drop {drop}");
        }
    }
}

#[test]
fn fig10_tts_advances_the_frontier() {
    // One panel suffices for the integration check; the bench sweeps all.
    let points = experiments::fig10_rows(
        &DeviceProfile::v75(),
        DatasetKind::Math500Like,
        Method::BestOfN,
        17,
    );
    let best_q15 = points
        .iter()
        .filter(|p| p.series == "Q1.5-TTS")
        .map(|p| p.accuracy_pct)
        .fold(0.0f64, f64::max);
    let q3_base = points
        .iter()
        .find(|p| p.series == "Q3-base")
        .unwrap()
        .accuracy_pct;
    assert!(
        best_q15 > q3_base,
        "Q1.5+TTS {best_q15}% must beat Q3 base {q3_base}%"
    );
}
