//! Thermal/DVFS golden regression layer.
//!
//! Three guarantees pin the thermal feedback loop to the rest of the
//! repo:
//!
//! 1. **Inertness when disabled.** With thermals off (the default
//!    [`ThermalPolicy::Disabled`]) — or running the physics under an
//!    infinite throttle cap — every serving and decode number the
//!    existing `BENCH_decode.json`/`BENCH_serving.json` artifacts report
//!    reproduces bit-for-bit, and functional golden logits are untouched
//!    by the DVFS clock (the clock scales *rates*, never math).
//! 2. **Pinned throttle points.** For the fixed Qwen-3B b8 ctx-1024
//!    workload, the exact step index at which each Snapdragon generation
//!    first throttles is pinned (the simulator is deterministic, so any
//!    drift means the thermal constants or the cost model moved).
//! 3. **DVFS differential.** A throttled decode step recomputed through
//!    the full pipeline on an `at_clock`-scaled profile must match the
//!    from-scratch prediction — every engine lane's busy time dilates by
//!    exactly `1/mult`, including the DMA lane under weight streaming —
//!    while fixed session-switch costs do not dilate.

use npuscale::experiments::thermal_decode_rows;
use npuscale::pipeline::EngineIdx;
use npuscale::serve::{
    poisson_trace, FleetGateway, FleetSpec, GatewayConfig, TenantSpec, ThermalPolicy,
};
use npuscale_repro::prelude::*;

/// A device whose die can never reach its throttle cap: the thermal
/// physics runs but the governor never fires.
fn uncapped(device: &DeviceProfile) -> DeviceProfile {
    let mut d = device.clone();
    d.throttle_temp_c = f64::INFINITY;
    d
}

#[test]
fn decode_points_ignore_the_thermal_constants() {
    // The cost pipeline prices work from rates and capacities; the
    // thermal fields ride along on the profile without perturbing it.
    // This is what keeps the seed benchmarks bit-for-bit reproducible.
    for device in DeviceProfile::all() {
        let base = NpuSimBackend::overlapped(device.clone())
            .decode(ModelId::Qwen1_5B, 8, 1024)
            .unwrap();
        let capped = NpuSimBackend::overlapped(uncapped(&device))
            .decode(ModelId::Qwen1_5B, 8, 1024)
            .unwrap();
        assert_eq!(base.step_secs, capped.step_secs);
        assert_eq!(base.tokens_per_sec, capped.tokens_per_sec);
        assert_eq!(base.engine_secs, capped.engine_secs);
        assert_eq!(base.cpu_share, capped.cpu_share);
    }
}

#[test]
fn disabled_and_uncapped_blind_serving_agree_bit_for_bit() {
    // Running the full thermal physics under an infinite cap must be
    // indistinguishable from not running it at all: same clock, same
    // step durations, so every latency percentile and goodput number in
    // the serving artifact reproduces exactly.
    let tenants = [TenantSpec::interactive("chat"), TenantSpec::batch("bulk")];
    let trace = poisson_trace(&tenants, 3.0, 120, 20260808);

    let run = |spec: FleetSpec, thermal: ThermalPolicy| {
        let config = GatewayConfig {
            thermal,
            ..GatewayConfig::default()
        };
        FleetGateway::new(spec, config)
            .unwrap()
            .serve_trace(&trace)
            .unwrap()
    };

    let mut spec = FleetSpec::heterogeneous(ModelId::Qwen1_5B);
    let disabled = run(spec.clone(), ThermalPolicy::Disabled);
    for w in &mut spec.workers {
        w.device = uncapped(&w.device);
    }
    let blind = run(spec, ThermalPolicy::Blind);

    assert_eq!(disabled.completed, blind.completed);
    assert_eq!(disabled.rejected, blind.rejected);
    assert_eq!(disabled.slo_good, blind.slo_good);
    assert_eq!(disabled.decoded_tokens, blind.decoded_tokens);
    assert_eq!(disabled.peak_queue_depth, blind.peak_queue_depth);
    assert_eq!(disabled.makespan_secs, blind.makespan_secs);
    assert_eq!(disabled.goodput_rps, blind.goodput_rps);
    assert_eq!(disabled.tokens_per_sec, blind.tokens_per_sec);
    assert_eq!(disabled.ttft_p50_secs, blind.ttft_p50_secs);
    assert_eq!(disabled.ttft_p99_secs, blind.ttft_p99_secs);
    assert_eq!(disabled.tbt_p50_secs, blind.tbt_p50_secs);
    assert_eq!(disabled.tbt_p99_secs, blind.tbt_p99_secs);
    assert_eq!(disabled.queue_wait_p50_secs, blind.queue_wait_p50_secs);
    assert_eq!(disabled.queue_wait_p99_secs, blind.queue_wait_p99_secs);
    for (d, b) in disabled.workers.iter().zip(blind.workers.iter()) {
        assert_eq!(d.steps, b.steps, "{}", d.name);
        assert_eq!(d.busy_secs, b.busy_secs, "{}", d.name);
        assert_eq!(d.served, b.served, "{}", d.name);
        assert_eq!(d.decoded_tokens, b.decoded_tokens, "{}", d.name);
        // The uncapped die heats (physics ran) but never throttles; the
        // disabled die never even warms.
        assert_eq!(b.throttled_steps, 0, "{}", b.name);
        assert_eq!(d.throttled_steps, 0, "{}", d.name);
        if b.busy_secs > 0.0 {
            assert!(b.peak_temp_c > d.peak_temp_c, "{}", b.name);
        }
    }
}

#[test]
fn golden_logits_are_untouched_by_the_dvfs_clock() {
    // at_clock reprices time and watts; the functional tensor path must
    // be bitwise identical at any clock.
    let logits = |device: DeviceProfile| {
        let mut ctx = NpuContext::new(device, ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 99).unwrap();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
        let tok = Tokenizer::new();
        model
            .prefill(&mut ctx, &mut cache, 0, &tok.encode_with_bos("7*6="))
            .unwrap()
            .logits
    };
    for device in DeviceProfile::all() {
        let hot = device.at_clock(device.sustained_clock_mult);
        assert_eq!(
            logits(device.clone()),
            logits(hot),
            "{}: logits moved with the clock",
            device.name
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "minutes-long unoptimized; CI runs it in release"
)]
fn first_throttle_steps_are_pinned_for_qwen3b_b8() {
    // The fixed workload from the BENCH_power artifact: Qwen-3B, batch 8,
    // ctx 1024, back-to-back decode from a cold die. The step index where
    // each generation first crosses its cap is a golden number — any
    // drift means the cost model, power model, or thermal constants
    // changed and the artifact needs re-pinning.
    let pinned = [("8G2", 298usize), ("8G3", 405), ("8G4", 573)];
    let rows = thermal_decode_rows();
    assert_eq!(rows.len(), pinned.len());
    for (device, step) in pinned {
        let row = rows.iter().find(|r| r.device == device).unwrap();
        assert_eq!(
            row.first_throttle_step,
            Some(step),
            "{device}: first throttle moved (got {:?}, {} s)",
            row.first_throttle_step,
            row.first_throttle_secs.unwrap_or(f64::NAN)
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "minutes-long unoptimized; CI runs it in release"
)]
fn throttled_pipeline_matches_the_scalar_dilation_reference() {
    // Differential test: every engine lane's busy time under a DVFS
    // clock `m` must follow the affine law `lane(m) = F + S/m`, where
    // `F` is fixed host-side overhead (ring dispatch/completion
    // latencies, session switches — they do not stretch with the NPU
    // clock) and `S` is clock-scaled engine work. Solve F and S from
    // scratch out of two probe runs (m = 1 and m = 0.5), then predict
    // the sustained clock point and check the pipeline against it on
    // all six lanes. Weight streaming keeps the DMA lane hot, so the
    // streaming fetch path is covered, not just compute.
    type Ctor = fn(DeviceProfile) -> NpuSimBackend;
    let variants: [(&str, Ctor); 2] = [
        ("overlapped", NpuSimBackend::overlapped),
        ("streamed", NpuSimBackend::streamed),
    ];
    for device in DeviceProfile::all() {
        let mult = device.sustained_clock_mult;
        for (variant, ctor) in variants {
            let probe = |m: f64| {
                let d = if m < 1.0 {
                    device.at_clock(m)
                } else {
                    device.clone()
                };
                ctor(d).decode(ModelId::Qwen1_5B, 8, 1024).unwrap()
            };
            let full = probe(1.0);
            let half = probe(0.5);
            let hot = probe(mult);
            for lane in 0..full.engine_secs.len() {
                // lane(1) = F + S, lane(0.5) = F + 2S.
                let scaled = half.engine_secs[lane] - full.engine_secs[lane];
                let fixed = full.engine_secs[lane] - scaled;
                assert!(
                    scaled >= -1e-9 && fixed >= -1e-9,
                    "{} {variant} lane {lane}: F {fixed} S {scaled}",
                    device.name
                );
                // The subtractive solve amplifies rounding; 5e-8 relative
                // still catches any real mispricing, which is >= O(mult).
                let want = fixed + scaled / mult;
                let got = hot.engine_secs[lane];
                assert!(
                    (got - want).abs() <= want.abs() * 5e-8 + 1e-12,
                    "{} {variant} lane {lane}: {got} vs reference {want}",
                    device.name
                );
            }
            // Structure checks: the scalar lane is pure fixed overhead,
            // the NPU data lanes are pure clock-scaled work.
            let lane = |p: &npuscale::pipeline::DecodePoint, e: hexsim::cost::Engine| {
                p.engine_secs[e.idx_pub()]
            };
            use hexsim::cost::Engine;
            assert_eq!(
                lane(&full, Engine::Scalar),
                lane(&hot, Engine::Scalar),
                "{} {variant}: scalar dispatch overhead must not dilate",
                device.name
            );
            for e in [Engine::Hvx, Engine::Hmx, Engine::Dma, Engine::L2fetch] {
                let want = lane(&full, e) / mult;
                let got = lane(&hot, e);
                // Thousands of per-op charges accumulate last-bit rounding
                // in a different order at each clock; 5e-8 relative still
                // catches any real mispricing.
                assert!(
                    (got - want).abs() <= want.abs() * 5e-8 + 1e-12,
                    "{} {variant} {e:?}: {got} vs pure dilation {want}",
                    device.name
                );
            }
        }
        // The streamed plan must actually exercise the DMA lane.
        let streamed = NpuSimBackend::streamed(device.clone())
            .decode(ModelId::Qwen1_5B, 8, 1024)
            .unwrap();
        let dma = streamed.engine_secs[hexsim::cost::Engine::Dma.idx_pub()];
        assert!(
            dma > 0.0,
            "{}: streaming left the DMA lane idle",
            device.name
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "minutes-long unoptimized; CI runs it in release"
)]
fn sharded_throttled_steps_beat_pure_dilation() {
    // Qwen-3B shards across sessions on every device; the per-step
    // session-switch charge is a fixed hardware cost that does not
    // stretch with the clock, so throttled throughput must stay at or
    // above `burst * mult` — never below.
    for device in DeviceProfile::all() {
        let mult = device.sustained_clock_mult;
        let base = NpuSimBackend::overlapped(device.clone())
            .decode(ModelId::Qwen3B, 8, 1024)
            .unwrap();
        let hot = NpuSimBackend::overlapped(device.at_clock(mult))
            .decode(ModelId::Qwen3B, 8, 1024)
            .unwrap();
        assert!(
            hot.tokens_per_sec >= base.tokens_per_sec * mult * (1.0 - 1e-6),
            "{}: throttled {} below burst {} * mult {}",
            device.name,
            hot.tokens_per_sec,
            base.tokens_per_sec,
            mult
        );
        assert!(hot.tokens_per_sec < base.tokens_per_sec);
    }
}
