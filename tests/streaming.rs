//! Golden tests for the weight-streaming hot/cold hierarchy (the DMA
//! prefetch lane):
//!
//! - streaming is a placement + time-model change only: functional logits
//!   are bit-identical to the fully resident build;
//! - the streamed overlapped period equals the independently recomputed
//!   critical path of the recorded stage graph (fetches included);
//! - with streaming disabled, every pinned pre-streaming number still
//!   reproduces exactly;
//! - the paper-facing wins hold: Qwen-7B on the 8 Gen 2 runs in 1 session
//!   instead of 3 at under 10% decode-throughput loss, and a deployment
//!   whose resident plan exceeds the session cap becomes runnable.

use edgellm::config::{ModelConfig, ModelId};
use edgellm::kv_cache::KvCache;
use edgellm::model::{LayerSchedule, Model};
use edgellm::overlap::{self, DispatchMode};
use hexsim::prelude::*;
use htpops::gemm::DequantVariant;
use npuscale::backend::{Backend, NpuSimBackend};
use npuscale::pipeline::{measure_decode, measure_decode_streaming_with, measure_decode_with};
use npuscale::session::ShardPlan;

fn decode_once(
    ctx: &mut NpuContext,
    model: &Model,
    batch: usize,
    ctx_len: usize,
) -> edgellm::DecodeOutput {
    let budget = batch * (ctx_len + 2);
    let mut cache = KvCache::new(ctx, &model.cfg, batch, budget).unwrap();
    for s in 0..batch {
        cache.fast_fill(s, ctx_len);
    }
    let out = model
        .decode_step(ctx, &mut cache, &vec![0u32; batch])
        .unwrap();
    cache.free(ctx);
    out
}

#[test]
fn streamed_logits_bit_identical_to_resident() {
    // Functional mode, full stack: the same tiny model built resident and
    // built with its second layer cold (weights in DDR staging) must
    // produce bit-identical logits through prefill and decode — streaming
    // re-homes weights and charges fetch time, never touching the math.
    let run = |streamed: &[usize]| {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let mut model = Model::new_streamed(
            &mut ctx,
            ModelId::Tiny,
            DequantVariant::CoalescedLut,
            23,
            streamed,
        )
        .unwrap();
        if !streamed.is_empty() {
            model.set_layer_schedule(LayerSchedule {
                streamed: streamed.to_vec(),
                stream_layer_bytes: 1 << 16,
                ..Default::default()
            });
        }
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 4, 256).unwrap();
        let tokens = [3u32, 11, 5, 8];
        let pf = model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
        cache.broadcast_prompt(true);
        let step = model
            .decode_step(&mut ctx, &mut cache, &[70, 71, 72, 73])
            .unwrap();
        (pf.logits, step.logits, ctx.ddr_staged_bytes())
    };
    let (base_pf, base_step, base_staged) = run(&[]);
    let (s_pf, s_step, staged) = run(&[1]);
    assert_eq!(base_pf, s_pf, "prefill logits must match bit-for-bit");
    assert_eq!(base_step, s_step, "decode logits must match bit-for-bit");
    assert_eq!(base_staged, 0);
    assert!(staged > 0, "the cold layer must live in DDR staging");
}

#[test]
fn streamed_period_is_the_recomputed_critical_path() {
    // The streamed overlapped step time must equal the critical path the
    // public scheduler recomputes from the recorded stage graph — weight
    // fetches on the DMA lane included.
    let device = DeviceProfile::v73();
    let cfg = ModelConfig::for_id(ModelId::Qwen7B);
    let plan = ShardPlan::build_streaming(&cfg, device.session_va_bytes, 8, 1024).unwrap();
    assert!(plan.is_streaming());
    let mut ctx = NpuContext::new_sharded(device.clone(), ExecMode::CostOnly, plan.sessions());
    let mut model = Model::new_streamed(
        &mut ctx,
        ModelId::Qwen7B,
        DequantVariant::CoalescedLut,
        1,
        &plan.streamed,
    )
    .unwrap();
    model.set_dispatch_mode(DispatchMode::Overlapped);
    model.set_layer_schedule(plan.schedule());
    let out = decode_once(&mut ctx, &model, 8, 1024);
    let recomputed = overlap::steady_state_step_secs(&out.stages);
    assert_eq!(out.cost.overlapped_secs, recomputed);
    // Every cold layer recorded its fetch; hot layers recorded none.
    for (l, stage) in out.stages.layers.iter().enumerate() {
        if plan.streamed.contains(&l) {
            assert!(stage.weight_fetch_secs > 0.0, "layer {l} lost its fetch");
        } else {
            assert_eq!(stage.weight_fetch_secs, 0.0, "hot layer {l} fetched");
        }
    }
    // And the pipeline entry point reports exactly this period.
    let point =
        measure_decode_streaming_with(&device, ModelId::Qwen7B, 8, 1024, DispatchMode::Overlapped)
            .unwrap();
    assert_eq!(point.step_secs, out.cost.overlapped_secs);
}

#[test]
fn streaming_disabled_reproduces_pinned_numbers() {
    // With no streaming in play, the serial and overlapped paths must
    // reproduce the pinned BENCH_decode.json anchors exactly: streaming
    // is additive, not a re-timing of existing plans.
    let v73 = DeviceProfile::v73();
    let s = measure_decode(&v73, ModelId::Qwen1_5B, 8, 1024).unwrap();
    assert!(
        (s.tokens_per_sec - 68.33).abs() < 0.01,
        "{}",
        s.tokens_per_sec
    );
    let o =
        measure_decode_with(&v73, ModelId::Qwen1_5B, 8, 1024, DispatchMode::Overlapped).unwrap();
    assert!(
        (o.tokens_per_sec - 171.39).abs() < 0.01,
        "{}",
        o.tokens_per_sec
    );
    let q7 = NpuSimBackend::overlapped(v73.clone())
        .decode(ModelId::Qwen7B, 8, 1024)
        .unwrap();
    assert!(
        (q7.tokens_per_sec - 56.33).abs() < 0.01,
        "{}",
        q7.tokens_per_sec
    );
    assert_eq!(q7.sessions, 3);
    // The backends still route resident plans through the historical
    // measurement functions bit-for-bit.
    let via_trait = NpuSimBackend::new(v73)
        .decode(ModelId::Qwen1_5B, 8, 1024)
        .unwrap();
    assert_eq!(via_trait.step_secs, s.step_secs);
    assert_eq!(via_trait.engine_secs, s.engine_secs);
}

#[test]
fn qwen7b_streams_in_one_session_at_low_loss() {
    // The headline: Qwen-7B batch-8 decode on the 8 Gen 2 drops from 3
    // resident sessions to 1 streamed session, keeping >= 90% of the
    // overlapped throughput (the cold-layer fetches hide behind compute
    // on the DMA lane).
    let device = DeviceProfile::v73();
    let resident = NpuSimBackend::overlapped(device.clone())
        .decode(ModelId::Qwen7B, 8, 1024)
        .unwrap();
    let streamed = NpuSimBackend::streamed(device)
        .decode(ModelId::Qwen7B, 8, 1024)
        .unwrap();
    assert_eq!(resident.sessions, 3);
    assert_eq!(streamed.sessions, 1);
    let ratio = streamed.tokens_per_sec / resident.tokens_per_sec;
    assert!(ratio >= 0.9, "streamed keeps only {ratio} of resident");
    // Fetches fully hide here, and the 1-session plan sheds the resident
    // plan's session switches — so streamed may fractionally *beat*
    // resident, but never by more than those switches are worth.
    assert!(ratio <= 1.01, "streamed implausibly fast: {ratio}");
}

#[test]
fn fits_and_decode_agree_for_larger_than_cap_models() {
    // Qwen-7B at batch 8 / ctx 8192 on the 8 Gen 2: the resident plan
    // wants more sessions than the rpcmem driver exposes, so the resident
    // backend rejects it in both the probe and the measurement; the
    // streaming placement stays under the cap and both accept, agreeing
    // on the session count.
    let device = DeviceProfile::v73();
    let cfg = ModelConfig::for_id(ModelId::Qwen7B);
    let resident_plan = ShardPlan::build(&cfg, device.session_va_bytes, 8, 8192).unwrap();
    assert!(resident_plan.sessions() > device.max_sessions);

    let resident = NpuSimBackend::overlapped(device.clone());
    assert!(resident.fits(ModelId::Qwen7B, 8, 8192).is_err());
    assert!(resident.decode(ModelId::Qwen7B, 8, 8192).is_err());

    let streamed = NpuSimBackend::streamed(device.clone());
    let fit = streamed.fits(ModelId::Qwen7B, 8, 8192).unwrap();
    assert!(fit.sessions <= device.max_sessions);
    let point = streamed.decode(ModelId::Qwen7B, 8, 8192).unwrap();
    assert_eq!(point.sessions, fit.sessions);
    assert!(point.tokens_per_sec > 0.2);
}
