//! Golden tests for the overlap-aware async-dispatch timeline (paper
//! Section 7.2.2):
//!
//! - overlapped wall time equals the independently recomputed critical
//!   path of the recorded stage graph;
//! - overlapped never exceeds the serial sum, and equals it exactly when
//!   overlap is disabled (the default), so every pre-overlap number still
//!   reproduces;
//! - the overlap is a *time-model* change only: functional logits are
//!   bit-identical in both modes, including sharded multi-session decode;
//! - the paper-facing wins hold: the CPU lm_head share hides at batch >=
//!   8, and the sharded Qwen-7B session-switch overhead is at least
//!   partially hidden.

use edgellm::config::ModelId;
use edgellm::kv_cache::KvCache;
use edgellm::model::{LayerSchedule, Model};
use edgellm::overlap::{self, DispatchMode};
use hexsim::prelude::*;
use htpops::gemm::DequantVariant;
use npuscale::backend::{Backend, NpuSimBackend};
use npuscale::pipeline::{measure_decode, measure_decode_with, measure_prefill_with};

fn cost_model(device: DeviceProfile, id: ModelId, dispatch: DispatchMode) -> (NpuContext, Model) {
    let mut ctx = NpuContext::new(device, ExecMode::CostOnly);
    let mut model = Model::new(&mut ctx, id, DequantVariant::CoalescedLut, 1).unwrap();
    model.set_dispatch_mode(dispatch);
    (ctx, model)
}

fn decode_once(
    ctx: &mut NpuContext,
    model: &Model,
    batch: usize,
    ctx_len: usize,
) -> edgellm::DecodeOutput {
    let budget = batch * (ctx_len + 2);
    let mut cache = KvCache::new(ctx, &model.cfg, batch, budget).unwrap();
    for s in 0..batch {
        cache.fast_fill(s, ctx_len);
    }
    let out = model
        .decode_step(ctx, &mut cache, &vec![0u32; batch])
        .unwrap();
    cache.free(ctx);
    out
}

#[test]
fn serial_mode_overlapped_equals_wall() {
    // The default dispatch mode reports overlapped_secs == wall_secs,
    // so accumulating StepCosts stays self-consistent.
    let (mut ctx, model) = cost_model(
        DeviceProfile::v75(),
        ModelId::Qwen1_5B,
        DispatchMode::Serial,
    );
    let out = decode_once(&mut ctx, &model, 8, 1024);
    assert_eq!(out.cost.overlapped_secs, out.cost.wall_secs());
    // And the measurement pipeline's explicit-serial entry point matches
    // the historical function bit-for-bit.
    let a = measure_decode(&DeviceProfile::v75(), ModelId::Qwen1_5B, 8, 1024).unwrap();
    let b = measure_decode_with(
        &DeviceProfile::v75(),
        ModelId::Qwen1_5B,
        8,
        1024,
        DispatchMode::Serial,
    )
    .unwrap();
    assert_eq!(a.step_secs, b.step_secs);
    assert_eq!(a.tokens_per_sec, b.tokens_per_sec);
}

#[test]
fn overlapped_wall_is_the_recomputed_critical_path() {
    // The reported overlapped time must equal the critical path computed
    // from the recorded stage graph by the public scheduler entry points
    // (decode: steady-state period; prefill: single pass).
    let (mut ctx, model) = cost_model(
        DeviceProfile::v75(),
        ModelId::Qwen1_5B,
        DispatchMode::Overlapped,
    );
    let out = decode_once(&mut ctx, &model, 8, 1024);
    let recomputed = overlap::steady_state_step_secs(&out.stages);
    assert_eq!(out.cost.overlapped_secs, recomputed);
    assert!(out.cost.overlapped_secs > 0.0);

    let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 514).unwrap();
    let pf = model
        .prefill(&mut ctx, &mut cache, 0, &vec![0u32; 512])
        .unwrap();
    cache.free(&mut ctx);
    assert_eq!(
        pf.cost.overlapped_secs,
        overlap::single_pass_secs(&pf.stages)
    );
}

#[test]
fn overlapped_never_exceeds_serial_across_the_sweep() {
    for device in DeviceProfile::all() {
        for model in [
            ModelId::Llama1B,
            ModelId::Qwen1_5B,
            ModelId::Qwen3B,
            ModelId::Qwen7B,
        ] {
            for batch in [1usize, 8, 16] {
                let serial = NpuSimBackend::new(device.clone());
                let overlapped = NpuSimBackend::overlapped(device.clone());
                let (Ok(s), Ok(o)) = (
                    serial.decode(model, batch, 1024),
                    overlapped.decode(model, batch, 1024),
                ) else {
                    continue;
                };
                assert!(
                    o.step_secs <= s.step_secs * (1.0 + 1e-12),
                    "{}/{} b{batch}: overlapped {} > serial {}",
                    device.arch.soc_label(),
                    model.label(),
                    o.step_secs,
                    s.step_secs
                );
                assert_eq!(o.sessions, s.sessions);
            }
        }
    }
}

#[test]
fn cpu_lm_head_share_hides_at_batch_8() {
    // Paper Section 7.2.2 / Figure 11: at batch >= 8 the CPU logits pass
    // is a large share of the serial step; the pipelined schedule hides
    // most of it behind the next step's layers.
    let d = DeviceProfile::v75();
    let serial = measure_decode(&d, ModelId::Qwen1_5B, 8, 1024).unwrap();
    let over =
        measure_decode_with(&d, ModelId::Qwen1_5B, 8, 1024, DispatchMode::Overlapped).unwrap();
    // A measurable wall-time win (the acceptance bar), driven by hiding
    // both the CPU tail and the per-layer dispatch overhead.
    assert!(
        over.step_secs < serial.step_secs * 0.9,
        "overlap must win >=10% at batch 8: {} vs {}",
        over.step_secs,
        serial.step_secs
    );
    // The hidden share covers most of the CPU tail: what the overlap
    // removed is at least half of the CPU seconds the serial step paid.
    let (mut ctx, model) = cost_model(d, ModelId::Qwen1_5B, DispatchMode::Serial);
    let out = decode_once(&mut ctx, &model, 8, 1024);
    let hidden = serial.step_secs - over.step_secs;
    assert!(
        hidden > 0.5 * out.cost.cpu_secs,
        "hidden {hidden} vs cpu {}",
        out.cost.cpu_secs
    );
}

#[test]
fn batch_1_keeps_the_cpu_on_the_critical_path() {
    // At batch 1 the sampled token feeds the next embedding, so the CPU
    // tail cannot hide — only dispatch overlap remains.
    let d = DeviceProfile::v75();
    let (mut sctx, smodel) = cost_model(d.clone(), ModelId::Qwen1_5B, DispatchMode::Serial);
    let s = decode_once(&mut sctx, &smodel, 1, 1024);
    let (mut octx, omodel) = cost_model(d, ModelId::Qwen1_5B, DispatchMode::Overlapped);
    let o = decode_once(&mut octx, &omodel, 1, 1024);
    let hidden = s.cost.wall_secs() - o.cost.overlapped_secs;
    // Wins something (the per-layer dispatch overhead, which lives inside
    // misc_secs) but cannot hide more than that.
    assert!(hidden > 0.0);
    assert!(hidden <= s.cost.misc_secs + 1e-12);
    // The overlapped step still contains the full CPU block and every
    // kernel: the sampled token gates the next embedding at batch 1.
    assert!(o.cost.overlapped_secs >= s.cost.cpu_secs + s.cost.gemm_secs + s.cost.attn_secs);
}

#[test]
fn sharded_switch_overhead_is_partially_hidden() {
    // Qwen-7B always runs sharded; the serial walk pays every 30 us
    // session switch, while the overlapped walk hides them behind the
    // previous shard's tail kernels and the CPU tail.
    let d = DeviceProfile::v75();
    let serial = NpuSimBackend::new(d.clone());
    let overlapped = NpuSimBackend::overlapped(d.clone());
    let s = serial.decode(ModelId::Qwen7B, 8, 1024).unwrap();
    let o = overlapped.decode(ModelId::Qwen7B, 8, 1024).unwrap();
    assert!(s.sessions > 1 && o.sessions == s.sessions);
    assert!(o.step_secs < s.step_secs);

    // Compare the overlapped sharded step against an overlapped step of
    // the same shapes with no switches (same multi-session VA envelope,
    // empty schedule): the switch cost sticking out of the overlapped
    // schedule is less than the full serial overhead.
    let plan = serial.shard_plan(ModelId::Qwen7B, 8, 1024).unwrap();
    let full_overhead = plan.switch_overhead_secs();
    assert!(full_overhead > 0.0);
    let step = |schedule: LayerSchedule| {
        let mut ctx =
            NpuContext::new_sharded(DeviceProfile::v75(), ExecMode::CostOnly, plan.sessions());
        let mut model =
            Model::new(&mut ctx, ModelId::Qwen7B, DequantVariant::CoalescedLut, 1).unwrap();
        model.set_dispatch_mode(DispatchMode::Overlapped);
        model.set_layer_schedule(schedule);
        decode_once(&mut ctx, &model, 8, 1024)
    };
    let sharded_out = step(plan.schedule());
    let single_out = step(LayerSchedule::single_session());
    let visible = sharded_out.cost.overlapped_secs - single_out.cost.overlapped_secs;
    assert!(
        visible < full_overhead,
        "switches must be at least partially hidden: visible {visible} vs serial {full_overhead}"
    );
    assert!(
        visible >= -1e-12,
        "sharding cannot speed a step up: {visible}"
    );
}

#[test]
fn sharded_overlapped_logits_bit_identical_to_serial_single_session() {
    // Functional mode: overlap + sharding change only the clock, never
    // the numbers.
    let mut base_ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let base = Model::new(
        &mut base_ctx,
        ModelId::Tiny,
        DequantVariant::CoalescedLut,
        42,
    )
    .unwrap();
    let mut base_cache = KvCache::new(&mut base_ctx, &base.cfg, 4, 256).unwrap();
    let tokens = [2u32, 7, 9, 4];
    let base_pf = base
        .prefill(&mut base_ctx, &mut base_cache, 0, &tokens)
        .unwrap();
    base_cache.broadcast_prompt(true);
    let base_step = base
        .decode_step(&mut base_ctx, &mut base_cache, &[100, 101, 102, 103])
        .unwrap();

    let mut ctx = NpuContext::new_sharded(DeviceProfile::v75(), ExecMode::Functional, 2);
    let mut model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 42).unwrap();
    model.set_dispatch_mode(DispatchMode::Overlapped);
    model.set_layer_schedule(LayerSchedule {
        boundaries: vec![1],
        switch_secs: 30e-6,
        ..Default::default()
    });
    let mut cache = KvCache::new(&mut ctx, &model.cfg, 4, 256).unwrap();
    let pf = model.prefill(&mut ctx, &mut cache, 0, &tokens).unwrap();
    cache.broadcast_prompt(true);
    let step = model
        .decode_step(&mut ctx, &mut cache, &[100, 101, 102, 103])
        .unwrap();

    assert_eq!(base_pf.logits, pf.logits);
    assert_eq!(base_step.logits, step.logits);
    // Engine busy totals are dispatch-mode independent; only the wall
    // composition changed.
    assert!(step.cost.overlapped_secs <= step.cost.wall_secs());
    assert!(base_step.cost.overlapped_secs == base_step.cost.wall_secs());
}

#[test]
fn overlapped_prefill_wins_but_less_than_decode() {
    // Prefill is a single pass: dispatch and switches hide, but there is
    // no cross-step pipelining, so the relative win is smaller than the
    // decode win at the same shapes.
    let d = DeviceProfile::v75();
    let ps = measure_prefill_with(&d, ModelId::Qwen1_5B, 512, DispatchMode::Serial).unwrap();
    let po = measure_prefill_with(&d, ModelId::Qwen1_5B, 512, DispatchMode::Overlapped).unwrap();
    assert!(po.total_secs <= ps.total_secs);
    assert!(po.tokens_per_sec >= ps.tokens_per_sec);
    let ds = measure_decode(&d, ModelId::Qwen1_5B, 8, 1024).unwrap();
    let do_ =
        measure_decode_with(&d, ModelId::Qwen1_5B, 8, 1024, DispatchMode::Overlapped).unwrap();
    let prefill_win = ps.total_secs / po.total_secs;
    let decode_win = ds.step_secs / do_.step_secs;
    assert!(
        decode_win > prefill_win,
        "decode win {decode_win} vs prefill win {prefill_win}"
    );
}

#[test]
fn decode_session_accumulates_overlapped_time() {
    // DecodeSession rides the model's dispatch mode: overlapped seconds
    // accumulate per step and undercut the serial sum.
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);
    let mut model =
        Model::new(&mut ctx, ModelId::Qwen1_5B, DequantVariant::CoalescedLut, 1).unwrap();
    model.set_dispatch_mode(DispatchMode::Overlapped);
    let prompt = vec![0u32; 64];
    let mut session = edgellm::DecodeSession::new(&mut ctx, &model, &prompt, 8, 8 * 80).unwrap();
    for _ in 0..8 {
        session.admit(0, 4).unwrap();
    }
    while session.active_count() > 0 {
        session.step(&mut ctx, |_, _| 0).unwrap();
    }
    assert!(session.decode_overlapped_secs() > 0.0);
    assert!(session.decode_overlapped_secs() < session.decode_secs());
    session.release(&mut ctx);
}
