//! Determinism guarantees: identical seeds produce identical results at
//! every layer of the stack — the property that makes the experiment
//! harness reproducible run to run.

use npuscale_repro::prelude::*;
use ttscale::best_of_n;

#[test]
fn weights_and_forward_are_seed_deterministic() {
    let run = || {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 99).unwrap();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
        let tok = Tokenizer::new();
        let out = model
            .prefill(&mut ctx, &mut cache, 0, &tok.encode_with_bos("7*6="))
            .unwrap();
        out.logits
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let logits = |seed| {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model =
            Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, seed).unwrap();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 1, 64).unwrap();
        let tok = Tokenizer::new();
        model
            .prefill(&mut ctx, &mut cache, 0, &tok.encode_with_bos("x"))
            .unwrap()
            .logits
    };
    assert_ne!(logits(1), logits(2));
}

#[test]
fn cost_measurements_are_exactly_repeatable() {
    let measure = || {
        let p = measure_decode(&DeviceProfile::v75(), ModelId::Qwen1_5B, 8, 1024).unwrap();
        (p.step_secs, p.cpu_share)
    };
    let (a_secs, a_share) = measure();
    let (b_secs, b_share) = measure();
    assert_eq!(a_secs, b_secs);
    assert_eq!(a_share, b_share);
}

#[test]
fn tts_accuracy_is_seed_stable() {
    let acc = || {
        let policy = CalibratedPolicy::new(ModelId::Qwen1_5B, DatasetKind::Math500Like);
        let tasks = TaskGenerator::new(DatasetKind::Math500Like, 12).take(200);
        best_of_n::accuracy_over_tasks(&policy, &SimOrm::default(), &tasks, 8, 42)
    };
    assert_eq!(acc(), acc());
}

/// Smoke test for the pinned `rand`: seeded `StdRng` streams are stable
/// run to run and across independent instances — the base property every
/// other determinism guarantee in this file builds on. (The vendored shim
/// promises per-seed determinism, not upstream bit-compatibility, so this
/// checks stream self-consistency rather than golden values.)
#[test]
fn seeded_std_rng_streams_are_stable() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let stream = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let floats: Vec<f64> = (0..32).map(|_| rng.gen()).collect();
        let ints: Vec<i64> = (0..32).map(|_| rng.gen_range(-999i64..=999)).collect();
        let units: Vec<f32> = (0..32).map(|_| rng.gen_range(f32::EPSILON..1.0)).collect();
        (floats, ints, units)
    };
    assert_eq!(stream(42), stream(42));
    assert_ne!(stream(42), stream(43));

    // The same property holds one level up, through every consumer of the
    // pinned rand: synthetic weights and workload generation.
    let weights = |seed| tilequant::synth::gaussian_matrix(16, 32, seed, 1.0, 0.05);
    assert_eq!(weights(7), weights(7));
    assert_ne!(weights(7), weights(8));

    let tasks = |seed: u64| {
        TaskGenerator::new(DatasetKind::Math500Like, seed)
            .take(50)
            .into_iter()
            .map(|t| (t.statement, t.answer))
            .collect::<Vec<_>>()
    };
    assert_eq!(tasks(12), tasks(12));
    assert_ne!(tasks(12), tasks(13));
}

#[test]
fn experiment_rows_are_stable() {
    let a = npuscale::experiments::fig8_rows();
    let b = npuscale::experiments::fig8_rows();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.softmax_pct, y.softmax_pct);
    }
}
