//! Property-based tests (proptest) on the core data structures and
//! invariants of the stack: binary16 arithmetic, quantization codecs,
//! tile layouts, LUT kernels and softmax.

use hexsim::f16::F16;
use hexsim::hmx::{pack_tile, unpack_tile, TILE_DIM};
use hexsim::prelude::*;
use htpops::exp_lut::ExpLut16;
use htpops::reference::softmax_ref_f64;
use htpops::softmax::{softmax_host, SoftmaxConfig};
use proptest::prelude::*;
use tilequant::block::{BlockQ4_0, BlockQ8_0, GROUP_SIZE};
use tilequant::super_group::SuperBlockQ4;
use tilequant::{QuantScheme, QuantizedMatrix, WeightLayout};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// f16 -> f32 -> f16 is the identity for every non-NaN bit pattern.
    #[test]
    fn f16_f32_roundtrip(bits in 0u16..=0xffff) {
        let h = F16(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f32(h.to_f32()).0, bits);
    }

    /// f32 -> f16 never increases magnitude by more than half an ULP
    /// (monotone rounding), and clamps to +-inf past the max finite value.
    #[test]
    fn f16_rounding_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let hlo = F16::from_f32(lo).to_f32();
        let hhi = F16::from_f32(hi).to_f32();
        prop_assert!(hlo <= hhi, "rounding must preserve order: {} {} -> {} {}", lo, hi, hlo, hhi);
    }

    /// Q4_0 reconstruction error is bounded by one quantization step.
    #[test]
    fn q4_error_bounded(values in prop::collection::vec(-8.0f32..8.0, GROUP_SIZE)) {
        let block = BlockQ4_0::quantize(&values);
        let deq = block.dequantize();
        let step = block.scale.to_f32().abs().max(1e-6);
        for (orig, got) in values.iter().zip(deq.iter()) {
            prop_assert!((orig - got).abs() <= step * 1.01 + 1e-3);
        }
    }

    /// Q8_0 reconstruction error is bounded by one step.
    #[test]
    fn q8_error_bounded(values in prop::collection::vec(-100.0f32..100.0, GROUP_SIZE)) {
        let block = BlockQ8_0::quantize(&values);
        let deq = block.dequantize();
        let step = block.scale.to_f32().abs().max(1e-6);
        for (orig, got) in values.iter().zip(deq.iter()) {
            prop_assert!((orig - got).abs() <= step * 0.75 + 1e-3);
        }
    }

    /// Super-group coalescing is lossless: to_blocks inverts from_blocks.
    #[test]
    fn super_group_roundtrip(values in prop::collection::vec(-4.0f32..4.0, 256)) {
        let blocks: [BlockQ4_0; 8] = std::array::from_fn(|g| {
            BlockQ4_0::quantize(&values[g * 32..(g + 1) * 32])
        });
        let sb = SuperBlockQ4::from_blocks(&blocks);
        prop_assert_eq!(sb.to_blocks(), blocks);
        let wire = SuperBlockQ4::from_bytes(&sb.to_bytes());
        prop_assert_eq!(wire, sb);
    }

    /// The HMX tile layout is a bijection: pack then unpack is identity.
    #[test]
    fn tile_pack_unpack_identity(seed in 0u64..1000) {
        let mut tile = [[F16::ZERO; TILE_DIM]; TILE_DIM];
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for row in tile.iter_mut() {
            for v in row.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *v = F16::from_f32(((state >> 40) as f32) / 1e6 - 8.0);
            }
        }
        let packed = pack_tile(&tile);
        let back = unpack_tile(&packed);
        for r in 0..TILE_DIM {
            for c in 0..TILE_DIM {
                prop_assert_eq!(tile[r][c], back[r][c]);
            }
        }
    }

    /// Quantize -> dequantize keeps the layout permutation consistent:
    /// both layouts reconstruct the same matrix up to quantization error.
    #[test]
    fn layouts_agree_up_to_quant_error(seed in 0u64..500) {
        let w = tilequant::synth::gaussian_matrix(32, 64, seed, 1.0, 0.0);
        let a = QuantizedMatrix::quantize(&w, 32, 64, QuantScheme::Q4_0, WeightLayout::ColumnMajorGroups).dequantize();
        let b = QuantizedMatrix::quantize(&w, 32, 64, QuantScheme::Q4_0, WeightLayout::HmxTileGroups).dequantize();
        for ((orig, x), y) in w.iter().zip(&a).zip(&b) {
            prop_assert!((orig - x).abs() < 1.5);
            prop_assert!((orig - y).abs() < 1.5);
        }
    }

    /// The exp LUT agrees with f64 exp (rounded to f16) on all non-positive
    /// finite inputs.
    #[test]
    fn exp_lut_matches_f64(mag_bits in 0u16..0x7c00) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let lut = ExpLut16::build(&mut ctx).unwrap();
        let x = F16(mag_bits | 0x8000); // Negative finite.
        let got = lut.exp_scalar(&ctx, x);
        let expect = F16::from_f64((x.to_f32() as f64).exp());
        prop_assert_eq!(got.0, expect.0);
    }
}

proptest! {
    // Softmax runs a full kernel per case; keep the case count lower.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// LUT softmax rows sum to ~1 and match the f64 reference elementwise.
    #[test]
    fn softmax_rows_normalize(values in prop::collection::vec(-6.0f32..6.0, 128)) {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let lut = ExpLut16::build(&mut ctx).unwrap();
        let cfg = SoftmaxConfig {
            rows: 1,
            cols: 128,
            method: htpops::exp_lut::ExpMethod::Lut16,
        };
        let (got, _) = softmax_host(&mut ctx, &lut, cfg, &values);
        let sum: f32 = got.iter().sum();
        prop_assert!((sum - 1.0).abs() < 0.02, "sum {}", sum);
        let reference = softmax_ref_f64(&values);
        for (g, r) in got.iter().zip(&reference) {
            prop_assert!((*g as f64 - r).abs() < 3e-3);
        }
    }
}

proptest! {
    // Each case runs a full functional decode workload on the tiny model.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The continuous-batching `DecodeSession` never exceeds its
    /// configured max batch, drains every admitted sequence to exactly
    /// its token budget, and emits each sequence's tokens in order.
    #[test]
    fn decode_session_bounds_batch_and_preserves_order(
        lengths8 in prop::collection::vec(1usize..10, 8),
        count in 1usize..9,
        max_batch in 1usize..5
    ) {
        use npuscale_repro::prelude::*;
        use std::collections::HashMap;

        let lengths = &lengths8[..count];

        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 7).unwrap();
        let prompt = Tokenizer::new().encode_with_bos("2*3=");
        let max_len = lengths.iter().copied().max().unwrap();
        let budget = max_batch * (prompt.len() + max_len + 2) + prompt.len();
        let mut session =
            DecodeSession::new(&mut ctx, &model, &prompt, max_batch, budget).unwrap();

        for (i, &len) in lengths.iter().enumerate() {
            let id = session.admit(60 + i as u32, len).unwrap();
            prop_assert_eq!(id, i as SeqId);
            prop_assert!(session.active_count() <= max_batch);
        }

        // Drain, recording every emitted token per sequence in step order
        // and re-checking the batch bound after every step.
        let mut emitted: HashMap<SeqId, Vec<u32>> = HashMap::new();
        let mut counter = 0u32;
        let mut guard = 0usize;
        while session.active_count() > 0 {
            let step = session
                .step(&mut ctx, |_, _| {
                    counter += 1;
                    100 + (counter % 120)
                })
                .unwrap();
            prop_assert!(!step.is_empty());
            prop_assert!(session.active_count() <= max_batch);
            for (id, t) in step {
                emitted.entry(id).or_default().push(t);
            }
            guard += 1;
            prop_assert!(guard <= lengths.iter().sum::<usize>() + 1, "failed to drain");
        }

        prop_assert_eq!(session.finished().len(), lengths.len());
        prop_assert_eq!(
            session.decoded_tokens(),
            lengths.iter().map(|l| l - 1).sum::<usize>()
        );
        for f in session.finished() {
            let len = lengths[f.id as usize];
            prop_assert_eq!(f.tokens.len(), len);
            // First token is the admission token; the rest must appear in
            // exactly the order the steps emitted them.
            prop_assert_eq!(f.tokens[0], 60 + f.id as u32);
            let steps_for_seq = emitted.remove(&f.id).unwrap_or_default();
            prop_assert_eq!(&f.tokens[1..], &steps_for_seq[..]);
        }
    }

    /// Under random interleavings of plain admits, chunked prompt admits,
    /// decode/prefill steps, early-EOS retires, and mid-stream
    /// preempt/resume, the session conserves sequences —
    /// `active + queued + prefilling + held-preempted + finished` equals
    /// the number admitted after every operation — and KV slot accounting
    /// never leaks: the DDR mapping stays flat while sequences churn
    /// (snapshots live on the host, not in DDR) and drops back to the
    /// model-only footprint on release.
    #[test]
    fn decode_session_conserves_sequences_under_random_admit_retire(
        ops in prop::collection::vec(0u8..6, 24),
        seed in 0u64..1000
    ) {
        use npuscale_repro::prelude::*;
        use std::collections::BTreeSet;

        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 7).unwrap();
        let ddr_model_only = ctx.ddr_mapped_bytes();
        let prompt = Tokenizer::new().encode_with_bos("2*3=");
        let (max_batch, max_new) = (3usize, 6usize);
        let budget = max_batch * (prompt.len() + 4 + max_new + 2) + prompt.len();
        let mut session =
            DecodeSession::new(&mut ctx, &model, &prompt, max_batch, budget).unwrap();
        let ddr_serving = ctx.ddr_mapped_bytes();
        prop_assert!(ddr_serving > ddr_model_only, "KV must map DDR");

        let mut admitted = 0usize;
        let mut live: BTreeSet<SeqId> = BTreeSet::new();
        let mut held: Vec<PreemptedSeq> = Vec::new();
        let mut counter = seed as u32;
        let is_eos = |t: u32| t.is_multiple_of(5);
        let run_step = |session: &mut DecodeSession,
                            ctx: &mut NpuContext,
                            counter: &mut u32|
         -> SimResult<Vec<(SeqId, u32)>> {
            if session.prefilling_count() > 0 {
                session.prefill_step(ctx, |_| 77)?;
                Ok(Vec::new())
            } else if session.active_count() > 0 {
                session.step(ctx, |_, _| {
                    *counter += 1;
                    100 + (*counter % 120)
                })
            } else {
                Ok(Vec::new())
            }
        };
        for (n, &op) in ops.iter().enumerate() {
            match op {
                0 => {
                    let id = session.admit(60 + n as u32, 1 + (n + seed as usize) % max_new)
                        .unwrap();
                    admitted += 1;
                    live.insert(id);
                }
                1 => {
                    if session.has_free_slot() {
                        let plen = 1 + (n + seed as usize) % 4;
                        let id = session
                            .admit_prompt(&vec![1u32; plen], max_new, 2)
                            .unwrap();
                        admitted += 1;
                        live.insert(id);
                    }
                }
                2 => {
                    let sampled = run_step(&mut session, &mut ctx, &mut counter).unwrap();
                    // Early EOS: retire the sequence the moment its
                    // sampled token terminates it (unless the budget
                    // already auto-retired it in the same step).
                    for (id, t) in sampled {
                        if is_eos(t)
                            && session.finished().iter().all(|f| f.id != id)
                        {
                            session.retire(id).unwrap();
                        }
                    }
                }
                3 => {
                    // Retire a deterministic live victim — may be active,
                    // queued, or mid-prefill.
                    let victims: Vec<SeqId> = live.iter().copied().collect();
                    if !victims.is_empty() {
                        let pick = victims[(n + seed as usize) % victims.len()];
                        session.retire(pick).unwrap();
                    }
                }
                4 => {
                    // Preempt a deterministic active decode: its KV rows
                    // snapshot to the host, the slot frees, and the
                    // sequence is held outside the session.
                    let ids = session.active_ids();
                    if !ids.is_empty() {
                        let pick = ids[(n + seed as usize) % ids.len()];
                        let paused = session.preempt(pick).unwrap();
                        live.remove(&pick);
                        held.push(paused);
                    }
                }
                _ => {
                    // Resume the most recently held sequence once a slot
                    // is free.
                    if session.has_free_slot() {
                        if let Some(paused) = held.pop() {
                            let id = session.resume(&paused).unwrap();
                            live.insert(id);
                        }
                    }
                }
            }
            for f in session.finished() {
                live.remove(&f.id);
            }
            // Conservation: nothing is ever lost or double-counted —
            // held-preempted sequences count toward the total.
            prop_assert_eq!(
                session.active_count()
                    + session.queued_count()
                    + session.prefilling_count()
                    + held.len()
                    + session.finished().len(),
                admitted,
                "op {} ({})", n, op
            );
            prop_assert!(session.active_count() <= max_batch);
            // KV never leaks while sequences churn through the slots.
            prop_assert_eq!(ctx.ddr_mapped_bytes(), ddr_serving, "op {}", n);
        }
        // Drain whatever is still in flight, resuming held sequences as
        // slots free up.
        let mut guard = 0usize;
        while session.active_count() + session.prefilling_count() > 0 || !held.is_empty() {
            if !held.is_empty() && session.has_free_slot() {
                let paused = held.pop().unwrap();
                let id = session.resume(&paused).unwrap();
                live.insert(id);
                continue;
            }
            run_step(&mut session, &mut ctx, &mut counter).unwrap();
            guard += 1;
            prop_assert!(guard < 1000, "failed to drain");
        }
        prop_assert_eq!(session.queued_count(), 0);
        prop_assert_eq!(session.finished().len(), admitted);
        let finished = session.into_finished(&mut ctx);
        prop_assert_eq!(finished.len(), admitted);
        // Releasing the session returns DDR to the model-only footprint.
        prop_assert_eq!(ctx.ddr_mapped_bytes(), ddr_model_only);
    }

    /// Pausing decodes at arbitrary step indices — while queued
    /// sequences churn through the freed slots and change the batch
    /// composition — and resuming them later yields, for every sequence,
    /// exactly the token stream of an uninterrupted greedy run: the KV
    /// snapshot/restore round-trip is bit-exact under any interleaving.
    #[test]
    fn preempt_resume_decode_is_bit_identical(
        pause_after in prop::collection::vec(1usize..12, 3),
        lens3 in prop::collection::vec(2usize..8, 3),
        seed in 0u64..500
    ) {
        use npuscale_repro::prelude::*;
        use std::collections::HashMap;

        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 7).unwrap();
        let prompt = Tokenizer::new().encode_with_bos("2*3=");
        let greedy = |logits: &[f32]| -> u32 {
            logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0 as u32
        };
        let budget = 2 * (prompt.len() + 8 + 2) + prompt.len();
        let run = |ctx: &mut NpuContext,
                       pauses: Option<&[usize]>|
         -> SimResult<HashMap<SeqId, Vec<u32>>> {
            let mut s = DecodeSession::new(ctx, &model, &prompt, 2, budget)?;
            for (i, &len) in lens3.iter().enumerate() {
                s.admit(60 + ((seed as u32 + i as u32) % 8), len)?;
            }
            let mut held: Vec<PreemptedSeq> = Vec::new();
            let mut steps = 0usize;
            let mut guard = 0usize;
            while s.active_count() > 0 || !held.is_empty() {
                guard += 1;
                assert!(guard < 500, "session failed to drain");
                if !held.is_empty() && s.has_free_slot() {
                    let paused = held.pop().unwrap();
                    s.resume(&paused)?;
                    continue;
                }
                if s.active_count() > 0 {
                    s.step(ctx, |_, logits| greedy(logits))?;
                    steps += 1;
                    if pauses.is_some_and(|ps| ps.contains(&steps)) {
                        let ids = s.active_ids();
                        if !ids.is_empty() {
                            let pick = ids[(steps + seed as usize) % ids.len()];
                            held.push(s.preempt(pick)?);
                        }
                    }
                }
            }
            Ok(s.into_finished(ctx).into_iter().map(|f| (f.id, f.tokens)).collect())
        };
        let uninterrupted = run(&mut ctx, None).unwrap();
        let preempted = run(&mut ctx, Some(&pause_after)).unwrap();
        prop_assert_eq!(uninterrupted, preempted);
    }
}

/// Replays an arbitrary proposal stream as a draft model: position in
/// the committed sequence indexes the stream (wrapping), so a fully
/// accepted round never desynchronizes the replay.
struct ReplayDraft {
    stream: Vec<u32>,
    prompt_len: usize,
}

impl ttscale::spec_decode::DraftModel for ReplayDraft {
    fn propose(&mut self, context: &[u32]) -> u32 {
        let pos = context.len() - self.prompt_len;
        self.stream[pos % self.stream.len()]
    }
}

proptest! {
    // Each case runs functional decode workloads on the tiny model.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Speculation is lossless against *any* draft: whatever token
    /// stream the draft proposes and whatever the draft length, the
    /// accepted sequence is bit-identical to plain greedy decoding, and
    /// the target KV advances by exactly accepted + 1 per verify round.
    #[test]
    fn speculation_is_lossless_for_any_draft_stream(
        proposals in prop::collection::vec(0u32..256, 32),
        draft_len in 1usize..6,
        new_tokens in 2usize..14
    ) {
        use npuscale_repro::prelude::*;
        use ttscale::spec_decode::{greedy_generate, speculative_generate};

        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        let prompt = vec![1u32, 50, 60, 70];
        let (greedy, _) = greedy_generate(&mut ctx, &model, &prompt, new_tokens).unwrap();
        let mut draft = ReplayDraft { stream: proposals, prompt_len: prompt.len() };
        let spec = speculative_generate(
            &mut ctx, &model, &mut draft, &prompt, new_tokens, draft_len,
        ).unwrap();
        prop_assert_eq!(&spec.tokens, &greedy, "speculation must be lossless");
        let mut expect = prompt.len();
        for r in &spec.rounds {
            prop_assert!(r.accepted <= r.draft_len);
            expect += r.accepted + 1;
            prop_assert_eq!(r.kv_len, expect, "KV invariant violated");
        }
    }

    /// The two-model pipeline is lossless under any adaptive-controller
    /// configuration and any draft weights, maintains the per-round KV
    /// invariant, and its overlapped schedule never exceeds the serial
    /// stage sum.
    #[test]
    fn two_model_pipeline_is_lossless_under_any_controller(
        draft_seed in 0u64..1000,
        init in 1usize..5,
        span in 0usize..4,
        new_tokens in 2usize..14
    ) {
        use npuscale_repro::prelude::*;
        use ttscale::spec_decode::{
            greedy_generate, speculative_decode_pipeline, DraftLenController,
        };

        let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
        let target = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
        let draft = Model::new(
            &mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, draft_seed,
        ).unwrap();
        let prompt = vec![1u32, 50, 60, 70, 80];
        let (greedy, _) = greedy_generate(&mut ctx, &target, &prompt, new_tokens).unwrap();
        let mut ctrl = DraftLenController::adaptive(init, 1, init + span);
        let out = speculative_decode_pipeline(
            &mut ctx, &target, &draft, &prompt, new_tokens, &mut ctrl,
        ).unwrap();
        prop_assert_eq!(&out.tokens, &greedy, "two-model speculation must be lossless");
        prop_assert!(out.overlapped_secs <= out.serial_secs + 1e-12);
        let mut expect = prompt.len();
        for r in &out.rounds {
            expect += r.accepted + 1;
            prop_assert_eq!(r.kv_len, expect, "KV invariant violated");
        }
    }
}

proptest! {
    // Thermal RC model + DVFS governor invariants. Cheap pure arithmetic,
    // so the full case count is fine.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under constant power a die heats monotonically toward (and never
    /// crosses) its equilibrium temperature.
    #[test]
    fn thermal_heating_is_monotone_and_bounded_by_equilibrium(
        dev in 0usize..3,
        power_w in 0.5f64..9.0,
        dt_ms in 5.0f64..200.0,
        steps in 1usize..4000
    ) {
        let device = DeviceProfile::all()[dev].clone();
        let eq = device.equilibrium_temp_c(power_w);
        let mut s = npuscale::thermal::ThermalState::ambient(&device);
        let mut prev = s.temp_c;
        for _ in 0..steps {
            s.step(&device, power_w, dt_ms / 1000.0);
            prop_assert!(s.temp_c >= prev, "cooled under load: {} -> {}", prev, s.temp_c);
            prop_assert!(s.temp_c <= eq + 1e-9, "overshot equilibrium {}: {}", eq, s.temp_c);
            prev = s.temp_c;
        }
    }

    /// A governed die never exceeds its throttle cap by more than the
    /// single step that crossed it: once over the cap the governor is
    /// throttled and the worst-case sustained equilibrium sits below the
    /// cap, so the temperature immediately relaxes.
    #[test]
    fn governed_die_never_exceeds_cap_plus_one_step(
        dev in 0usize..3,
        utils in prop::collection::vec(0.0f64..=1.0, 400),
        dt_ms in 10.0f64..150.0
    ) {
        let device = DeviceProfile::all()[dev].clone();
        let dt = dt_ms / 1000.0;
        // Worst-case dynamic draw: every engine lane at utilization `u`,
        // both memory lanes and all four CPU cores included.
        let dyn_max = device.hvx_power_w
            + device.hmx_power_w
            + 2.0 * device.dma_power_w
            + 4.0 * device.cpu_core_power_w;
        let mult3 = device.sustained_clock_mult.powi(3);
        // One worst-case burst step is the largest possible overshoot:
        // a crossing step always starts below the cap, and while over
        // the cap the governor is throttled, so the die only cools.
        let slack = (device.base_power_w + dyn_max) * dt / device.thermal_capacitance_j_per_c;
        let mut s = npuscale::thermal::ThermalState::ambient(&device);
        let mut governor = npuscale::thermal::DvfsGovernor::new();
        for &u in &utils {
            governor.observe(&device, s.temp_c);
            // Cube-law: throttled steps draw mult^3 of the dynamic power.
            let power_w = if governor.is_throttled() {
                device.base_power_w + u * dyn_max * mult3
            } else {
                device.base_power_w + u * dyn_max
            };
            s.step(&device, power_w, dt);
            prop_assert!(
                s.temp_c <= device.throttle_temp_c + slack + 1e-9,
                "temp {} cap {} slack {}",
                s.temp_c, device.throttle_temp_c, slack
            );
        }
    }

    /// An idle die always relaxes toward ambient: monotone decrease,
    /// never undershooting, and gone after many time constants.
    #[test]
    fn idle_die_relaxes_to_ambient(
        dev in 0usize..3,
        excess in 0.1f64..40.0,
        dt_ms in 5.0f64..500.0
    ) {
        let device = DeviceProfile::all()[dev].clone();
        let dt = dt_ms / 1000.0;
        let mut s = npuscale::thermal::ThermalState {
            temp_c: device.ambient_temp_c + excess,
        };
        let tau = device.thermal_time_constant_secs();
        let steps = (12.0 * tau / dt).ceil() as usize;
        let mut prev = s.temp_c;
        for _ in 0..steps {
            s.step(&device, 0.0, dt);
            prop_assert!(s.temp_c <= prev, "heated while idle");
            prop_assert!(s.temp_c >= device.ambient_temp_c - 1e-9, "undershot ambient");
            prev = s.temp_c;
        }
        // 12 tau: the excess has decayed below e^-12 ~ 6e-6 of its start.
        prop_assert!(
            s.temp_c - device.ambient_temp_c < excess * 1e-4 + 1e-9,
            "still {} above ambient after 12 tau", s.temp_c - device.ambient_temp_c
        );
    }

    /// Energy is conserved across arbitrary step interleavings: the
    /// joules pushed in equal the capacitance delta plus everything
    /// dissipated to ambient, whatever the (power, dt) sequence.
    #[test]
    fn thermal_energy_is_conserved_across_random_interleavings(
        dev in 0usize..3,
        powers in prop::collection::vec(0.0f64..10.0, 300),
        dts_ms in prop::collection::vec(1.0f64..300.0, 300)
    ) {
        let device = DeviceProfile::all()[dev].clone();
        let mut s = npuscale::thermal::ThermalState::ambient(&device);
        let start = s.temp_c;
        let mut joules_in = 0.0f64;
        let mut dissipated = 0.0f64;
        for (&power_w, &dt_ms) in powers.iter().zip(&dts_ms) {
            let dt = dt_ms / 1000.0;
            dissipated += s.step(&device, power_w, dt);
            joules_in += power_w * dt;
        }
        let stored = device.thermal_capacitance_j_per_c * (s.temp_c - start);
        let budget = joules_in.abs().max(1.0);
        prop_assert!(
            (joules_in - stored - dissipated).abs() <= budget * 1e-9,
            "in {} stored {} out {}", joules_in, stored, dissipated
        );
    }
}
