//! Cross-crate integration: the full stack from rpcmem session to verified
//! Best-of-N answers, on one simulated device.

use npuscale::session::{NpuSession, OpCode, SessionConfig};
use npuscale_repro::prelude::*;
use ttscale::llm_policy::llm_best_of_n;

#[test]
fn session_protocol_drives_a_model_step() {
    // The runtime protocol (submit -> clean -> poll) and a real model step
    // share one context; costs from both accumulate coherently.
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let mut session = NpuSession::open(SessionConfig::default());
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 1).unwrap();
    let mut cache = KvCache::new(&mut ctx, &model.cfg, 2, 128).unwrap();

    // CPU submits the layer ops; NPU-side poller dispatches them.
    for op in [OpCode::MatMul, OpCode::Attention, OpCode::Misc] {
        session.submit(&mut ctx, op, 0, true).unwrap();
        let req = session.poll_dispatch(&mut ctx).unwrap().unwrap();
        assert_eq!(req.op, op);
    }

    let tok = Tokenizer::new();
    let prompt = tok.encode_with_bos("1+1=");
    let out = model.prefill(&mut ctx, &mut cache, 0, &prompt).unwrap();
    assert_eq!(out.logits.len(), model.cfg.vocab);
    assert!(out.cost.wall_secs() > 0.0);
}

#[test]
fn end_to_end_best_of_n_produces_verifiable_answers() {
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 5).unwrap();
    let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 1).next_task();
    let out = llm_best_of_n(&mut ctx, &model, &task, 4, 8, 3).unwrap();
    assert_eq!(out.completions.len(), 4);
    // Each completion either parses to an answer or does not; the verifier
    // ran either way.
    assert_eq!(out.answers.len(), 4);
    assert!(out.cost.gemm_secs > 0.0);
    assert!(out.cost.attn_secs > 0.0);
    assert!(out.cost.cpu_secs > 0.0);
}

#[test]
fn tts_scaling_holds_on_every_device_generation() {
    // The accuracy side is device-independent; the latency side must show
    // the free-compute effect on all three generations.
    for device in DeviceProfile::all() {
        let b1 = measure_decode(&device, ModelId::Llama1B, 1, 512).unwrap();
        let b8 = measure_decode(&device, ModelId::Llama1B, 8, 512).unwrap();
        let speedup = b8.tokens_per_sec / b1.tokens_per_sec;
        assert!(
            speedup > 3.0,
            "{}: batch-8 speedup only {speedup}",
            device.name
        );
        // Batch-8 decode costs well under 8x batch-1.
        assert!(b8.step_secs < 3.0 * b1.step_secs);
    }
}

#[test]
fn va_gate_and_multi_session_workaround() {
    use npuscale::session::MultiSession;

    // Qwen3B cannot map on the 8G2 session...
    let err = measure_decode(&DeviceProfile::v73(), ModelId::Qwen3B, 1, 512).unwrap_err();
    assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    // ...but the Section 8 multi-session workaround can place its layers.
    let cfg = ModelConfig::for_id(ModelId::Qwen3B);
    let mut ms = MultiSession::new(DeviceProfile::v73().session_va_bytes);
    for _ in 0..cfg.layers {
        ms.map(cfg.npu_layer_weight_bytes()).unwrap();
    }
    assert!(ms.sessions() >= 2, "3B weights need >= 2 sessions");
}

#[test]
fn functional_and_cost_only_decode_costs_agree() {
    // The tiny model runs in both modes; the charged costs must be close
    // (identical kernels, replay-scaled vs fully executed).
    let step = |mode| {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), mode);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 1).unwrap();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 2, 64).unwrap();
        if mode == ExecMode::Functional {
            let tok = Tokenizer::new();
            let prompt = tok.encode_with_bos("ab");
            model.prefill(&mut ctx, &mut cache, 0, &prompt).unwrap();
            cache.broadcast_prompt(true);
        } else {
            cache.fast_fill(0, 3);
            cache.fast_fill(1, 3);
        }
        let out = model.decode_step(&mut ctx, &mut cache, &[10, 11]).unwrap();
        out.cost.wall_secs()
    };
    let wf = step(ExecMode::Functional);
    let wc = step(ExecMode::CostOnly);
    let rel = (wf - wc).abs() / wf;
    assert!(rel < 0.05, "functional {wf} vs cost-only {wc} ({rel})");
}
