//! Cross-crate integration: the full stack from rpcmem session to verified
//! Best-of-N answers, on one simulated device.

use npuscale::session::{NpuSession, OpCode, SessionConfig};
use npuscale_repro::prelude::*;
use ttscale::llm_policy::llm_best_of_n;

#[test]
fn session_protocol_drives_a_model_step() {
    // The runtime protocol (submit -> clean -> poll) and a real model step
    // share one context; costs from both accumulate coherently.
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let mut session = NpuSession::open(SessionConfig::default());
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 1).unwrap();
    let mut cache = KvCache::new(&mut ctx, &model.cfg, 2, 128).unwrap();

    // CPU submits the layer ops; NPU-side poller dispatches them.
    for op in [OpCode::MatMul, OpCode::Attention, OpCode::Misc] {
        session.submit(&mut ctx, op, 0, true).unwrap();
        let req = session.poll_dispatch(&mut ctx).unwrap().unwrap();
        assert_eq!(req.op, op);
    }

    let tok = Tokenizer::new();
    let prompt = tok.encode_with_bos("1+1=");
    let out = model.prefill(&mut ctx, &mut cache, 0, &prompt).unwrap();
    assert_eq!(out.logits.len(), model.cfg.vocab);
    assert!(out.cost.wall_secs() > 0.0);
}

#[test]
fn end_to_end_best_of_n_produces_verifiable_answers() {
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 5).unwrap();
    let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 1).next_task();
    let out = llm_best_of_n(&mut ctx, &model, &task, 4, 8, 3).unwrap();
    assert_eq!(out.completions.len(), 4);
    // Each completion either parses to an answer or does not; the verifier
    // ran either way.
    assert_eq!(out.answers.len(), 4);
    assert!(out.cost.gemm_secs > 0.0);
    assert!(out.cost.attn_secs > 0.0);
    assert!(out.cost.cpu_secs > 0.0);
}

#[test]
fn tts_scaling_holds_on_every_device_generation() {
    // The accuracy side is device-independent; the latency side must show
    // the free-compute effect on all three generations.
    for device in DeviceProfile::all() {
        let b1 = measure_decode(&device, ModelId::Llama1B, 1, 512).unwrap();
        let b8 = measure_decode(&device, ModelId::Llama1B, 8, 512).unwrap();
        let speedup = b8.tokens_per_sec / b1.tokens_per_sec;
        assert!(
            speedup > 3.0,
            "{}: batch-8 speedup only {speedup}",
            device.name
        );
        // Batch-8 decode costs well under 8x batch-1.
        assert!(b8.step_secs < 3.0 * b1.step_secs);
    }
}

#[test]
fn va_gate_and_multi_session_workaround() {
    // Qwen3B cannot map on a single 8G2 session...
    let err = measure_decode(&DeviceProfile::v73(), ModelId::Qwen3B, 1, 512).unwrap_err();
    assert!(matches!(err, SimError::VaSpaceExceeded { .. }));
    // ...but the Section 8 multi-session workaround places its layers
    // across two sessions and decodes through them end to end.
    let cfg = ModelConfig::for_id(ModelId::Qwen3B);
    let plan = ShardPlan::build(&cfg, DeviceProfile::v73().session_va_bytes, 1, 512).unwrap();
    assert_eq!(plan.sessions(), 2, "3B weights need 2 sessions");
    let point = measure_decode_sharded(&DeviceProfile::v73(), ModelId::Qwen3B, 1, 512, &plan)
        .expect("sharded decode must run where single-session cannot");
    assert_eq!(point.sessions, 2);
    assert!(point.tokens_per_sec > 0.0);
    // The backend takes the same path automatically.
    let backend = NpuSimBackend::new(DeviceProfile::v73());
    let auto = backend.decode(ModelId::Qwen3B, 1, 512).unwrap();
    assert_eq!(auto.step_secs, point.step_secs, "auto-plan must match");
}

#[test]
fn sharded_decode_is_bit_identical_to_single_session() {
    // Golden parity (functional mode): for a model that fits either way,
    // a forced 2-session shard must produce bit-identical logits through
    // prefill and several decode steps — sharding only re-homes weights
    // and re-points dispatch; the math is untouched.
    let run = |sharded: bool| {
        let mut ctx = if sharded {
            NpuContext::new_sharded(DeviceProfile::v75(), ExecMode::Functional, 2)
        } else {
            NpuContext::new(DeviceProfile::v75(), ExecMode::Functional)
        };
        let mut model =
            Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 9).unwrap();
        if sharded {
            // Tiny has 2 layers: one per session.
            model.set_layer_schedule(LayerSchedule {
                boundaries: vec![1],
                switch_secs: 30e-6,
                ..Default::default()
            });
        }
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 2, 128).unwrap();
        let tok = Tokenizer::new();
        let prompt = tok.encode_with_bos("6*7=");
        let prefill = model.prefill(&mut ctx, &mut cache, 0, &prompt).unwrap();
        cache.broadcast_prompt(true);
        let mut logits = prefill.logits;
        let mut switch_secs = prefill.cost.switch_secs;
        let mut tokens = [40u32, 41];
        for _ in 0..3 {
            let out = model.decode_step(&mut ctx, &mut cache, &tokens).unwrap();
            // Greedy-feed the argmax to make later steps depend on
            // earlier logits bit-for-bit.
            for (r, t) in tokens.iter_mut().enumerate() {
                let row = &out.logits[r * model.cfg.vocab..(r + 1) * model.cfg.vocab];
                let argmax = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0;
                *t = argmax as u32;
            }
            logits.extend_from_slice(&out.logits);
            switch_secs += out.cost.switch_secs;
        }
        (logits, tokens, switch_secs)
    };
    let (base_logits, base_tokens, base_switch) = run(false);
    let (shard_logits, shard_tokens, shard_switch) = run(true);
    assert_eq!(base_logits, shard_logits, "logits must match bit-for-bit");
    assert_eq!(base_tokens, shard_tokens, "greedy continuations must match");
    assert_eq!(base_switch, 0.0);
    // 4 sharded walks (prefill + 3 steps) x 2 switches each.
    assert!((shard_switch - 8.0 * 30e-6).abs() < 1e-12);
}

#[test]
fn functional_and_cost_only_decode_costs_agree() {
    // The tiny model runs in both modes; the charged costs must be close
    // (identical kernels, replay-scaled vs fully executed).
    let step = |mode| {
        let mut ctx = NpuContext::new(DeviceProfile::v75(), mode);
        let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 1).unwrap();
        let mut cache = KvCache::new(&mut ctx, &model.cfg, 2, 64).unwrap();
        if mode == ExecMode::Functional {
            let tok = Tokenizer::new();
            let prompt = tok.encode_with_bos("ab");
            model.prefill(&mut ctx, &mut cache, 0, &prompt).unwrap();
            cache.broadcast_prompt(true);
        } else {
            cache.fast_fill(0, 3);
            cache.fast_fill(1, 3);
        }
        let out = model.decode_step(&mut ctx, &mut cache, &[10, 11]).unwrap();
        out.cost.wall_secs()
    };
    let wf = step(ExecMode::Functional);
    let wc = step(ExecMode::CostOnly);
    let rel = (wf - wc).abs() / wf;
    assert!(rel < 0.05, "functional {wf} vs cost-only {wc} ({rel})");
}
