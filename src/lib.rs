//! Umbrella crate for the reproduction of *"Scaling LLM Test-Time Compute
//! with Mobile NPU on Smartphones"* (EuroSys '26).
//!
//! Re-exports the full stack so examples and integration tests can reach
//! every layer through one dependency:
//!
//! - [`hexsim`] — the Hexagon-class NPU simulator (HVX/HMX/TCM/DMA).
//! - [`tilequant`] — Q4_0/Q8_0, tile-group layout, super-group coalescing.
//! - [`htpops`] — the NPU kernel library (LUT dequant, LUT softmax,
//!   FlashAttention, mixed-precision GEMM).
//! - [`edgellm`] — the transformer runtime (models, KV cache, forward).
//! - [`ttscale`] — Best-of-N, beam search, self-consistency.
//! - [`mathsynth`] — verifiable synthetic workloads.
//! - [`npuscale`] — the end-to-end system and experiment drivers.
//!
//! # Examples
//!
//! ```
//! use npuscale_repro::prelude::*;
//!
//! let device = DeviceProfile::v75();
//! let point = measure_decode(&device, ModelId::Qwen1_5B, 8, 1024).unwrap();
//! assert!(point.tokens_per_sec > 10.0);
//! ```

pub use edgellm;
pub use hexsim;
pub use htpops;
pub use mathsynth;
pub use npuscale;
pub use tilequant;
pub use ttscale;

/// The most commonly used items across the stack.
pub mod prelude {
    pub use edgellm::config::{ModelConfig, ModelId};
    pub use edgellm::decode_session::{DecodeSession, PreemptedSeq, SeqId};
    pub use edgellm::kv_cache::KvCache;
    pub use edgellm::model::{LayerSchedule, Model};
    pub use edgellm::overlap::DispatchMode;
    pub use edgellm::tokenizer::Tokenizer;
    pub use hexsim::prelude::*;
    pub use htpops::exp_lut::ExpMethod;
    pub use htpops::gemm::DequantVariant;
    pub use mathsynth::mathgen::{DatasetKind, TaskGenerator};
    pub use npuscale::backend::{
        all_backends, figure13_backends, npu_backend, npu_backends_all, npu_backends_both, Backend,
        FitReport, NpuSimBackend,
    };
    pub use npuscale::pipeline::{
        measure_decode, measure_decode_sharded, measure_decode_sharded_with, measure_decode_with,
        measure_prefill, measure_prefill_sharded, measure_prefill_sharded_with,
        measure_prefill_with,
    };
    pub use npuscale::power::PowerModel;
    pub use npuscale::serve::{
        poisson_trace, FleetGateway, FleetSpec, GatewayConfig, PrefillMode, Request, ServingReport,
        SloConfig, TenantSpec,
    };
    pub use npuscale::session::{LayerShard, MultiSession, ShardPlan};
    pub use ttscale::policy::CalibratedPolicy;
    pub use ttscale::verifier::{SimOrm, SimPrm};
}
