//! Quickstart: load a model on the simulated NPU and generate text.
//!
//! Builds the tiny functional model (bit-exact simulation of every kernel),
//! prefills a prompt, decodes a batch of four continuations in parallel —
//! exactly how test-time scaling uses the NPU's idle matrix capacity — and
//! prints what each stage cost on the simulated Snapdragon 8 Gen 3.
//!
//! Run with: `cargo run --release --example quickstart`

use npuscale_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ttscale::llm_policy::LlmSampler;

fn main() {
    // A simulated OnePlus 12 (Snapdragon 8 Gen 3, Hexagon V75).
    let device = DeviceProfile::v75();
    println!("device: {} ({})", device.name, device.soc);

    let mut ctx = NpuContext::new(device, ExecMode::Functional);
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 42)
        .expect("model fits the session VA space");
    println!(
        "model: {} ({} layers, hidden {}, vocab {})",
        model.cfg.name, model.cfg.layers, model.cfg.hidden, model.cfg.vocab
    );

    // Prefill the prompt once, then fan it out to a batch of 4 samples.
    let tok = Tokenizer::new();
    let prompt = "Compute: 12 + 7 * 3\nAnswer: ";
    let prompt_tokens = tok.encode_with_bos(prompt);
    let batch = 4;
    let mut cache = KvCache::new(&mut ctx, &model.cfg, batch, 512).unwrap();
    let prefill = model
        .prefill(&mut ctx, &mut cache, 0, &prompt_tokens)
        .unwrap();
    cache.broadcast_prompt(true);
    println!(
        "\nprefill: {} tokens in {:.2} ms of simulated device time",
        prompt_tokens.len(),
        prefill.cost.wall_secs() * 1e3
    );

    // Batched decode with temperature sampling (each sequence diverges).
    let sampler = LlmSampler::default();
    let mut rng = StdRng::seed_from_u64(7);
    let mut current: Vec<u32> = (0..batch)
        .map(|_| sampler.sample(&prefill.logits, &mut rng))
        .collect();
    let mut generated: Vec<Vec<u32>> = current.iter().map(|&t| vec![t]).collect();
    let mut decode_secs = 0.0;
    for _ in 0..12 {
        let out = model.decode_step(&mut ctx, &mut cache, &current).unwrap();
        decode_secs += out.cost.wall_secs();
        for s in 0..batch {
            let row = &out.logits[s * model.cfg.vocab..(s + 1) * model.cfg.vocab];
            current[s] = sampler.sample(row, &mut rng);
            generated[s].push(current[s]);
        }
    }

    println!(
        "decode: {} steps x batch {} = {} tokens in {:.2} ms ({:.1} tok/s simulated)",
        12,
        batch,
        12 * batch,
        decode_secs * 1e3,
        (12 * batch) as f64 / decode_secs
    );
    println!("\ncompletions (untrained tiny model -> noise, but every kernel ran):");
    for (s, g) in generated.iter().enumerate() {
        println!("  sample {s}: {:?}", tok.decode(g));
    }

    // The headline effect: the same step at batch 1 vs batch 16 on a
    // paper-scale model (cost-only mode).
    println!("\nfree-compute effect on Qwen2.5-1.5B (simulated 8G3):");
    for batch in [1usize, 4, 16] {
        let p = measure_decode(&DeviceProfile::v75(), ModelId::Qwen1_5B, batch, 1024).unwrap();
        println!(
            "  batch {batch:>2}: {:>6.1} ms/step -> {:>6.1} tok/s",
            p.step_secs * 1e3,
            p.tokens_per_sec
        );
    }
}
