//! Kernel-level tour of the paper's two core techniques: tile-group LUT
//! dequantization (Figures 6/7/9/15) and the vgather exp LUT inside FP16
//! FlashAttention (Figures 8/14).
//!
//! Run with: `cargo run --release --example kernel_tour`

use htpops::attention::{AttnShape, FlashAttention};
use htpops::exp_lut::ExpLut16;
use htpops::gemm::{gemm_mixed, prepare_weights, GemmConfig};
use htpops::softmax::{softmax_rows, SoftmaxConfig};
use npuscale_repro::prelude::*;
use tilequant::{QuantScheme, QuantizedMatrix};

fn main() {
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::CostOnly);

    // --- 1. Dequantization ablation on one weight matrix. ---
    println!("GEMV 2048x2048 Q4_0 on the simulated V75 (Figure 15 arms):");
    let (k, n) = (2048usize, 2048usize);
    let mut ours = 0.0;
    for variant in [
        DequantVariant::BaselineScatter,
        DequantVariant::HmxLayoutNaive,
        DequantVariant::CoalescedLut,
        DequantVariant::NoDequantBound,
    ] {
        let qm = QuantizedMatrix {
            k,
            n,
            scheme: QuantScheme::Q4_0,
            layout: variant.required_layout(),
            bytes: Vec::new(),
        };
        let w = prepare_weights(&mut ctx, &qm, variant).unwrap();
        let cfg = GemmConfig {
            m: 1,
            k,
            n,
            scheme: QuantScheme::Q4_0,
            variant,
            threads: 6,
        };
        let r = gemm_mixed(&mut ctx, &cfg, &w, &[]);
        ctx.ddr_free(w.buf);
        let us = r.cost.wall_secs * 1e6;
        if variant == DequantVariant::CoalescedLut {
            ours = us;
        }
        println!("  {:<14} {:>8.0} us", variant.label(), us);
    }
    println!("  (LUT path holds within ~40% of the copy-only bound: {ours:.0} us)");

    // --- 2. Softmax exp ablation. ---
    println!("\non-chip softmax, Nq=16 x Nkv=4096 (Figure 14 arms):");
    let lut = ExpLut16::build(&mut ctx).unwrap();
    let data = ctx.tcm_alloc(64 * 1024, 128).unwrap();
    let mut lut_us = 0.0;
    for method in [ExpMethod::F32Poly, ExpMethod::F16Poly, ExpMethod::Lut16] {
        let cost = softmax_rows(
            &mut ctx,
            &lut,
            SoftmaxConfig {
                rows: 16,
                cols: 4096,
                method,
            },
            data,
        );
        let us = cost.wall_secs * 1e6;
        if method == ExpMethod::Lut16 {
            lut_us = us;
        }
        println!("  {:<10} {:>8.1} us", method.label(), us);
    }
    println!("  (the 64 KiB vgather LUT holds the floor: {lut_us:.1} us)");

    // --- 3. FlashAttention breakdown across decode batch sizes. ---
    println!("\nFlashAttention stage shares, Qwen2.5-1.5B geometry (Figure 8):");
    let fa = FlashAttention::new(&lut, ExpMethod::Lut16, 6);
    println!(
        "  {:>4} {:>12} {:>9} {:>9}",
        "q", "load/store", "matmul", "softmax"
    );
    for q in [4usize, 8, 16, 32] {
        let (_, bd) = fa.run(
            &mut ctx,
            AttnShape {
                nq: q,
                nkv: 4096,
                head_dim: 128,
            },
            &[],
            &[],
            &[],
        );
        let s = bd.shares();
        println!("  {:>4} {:>11.1}% {:>8.1}% {:>8.1}%", q, s[0], s[1], s[2]);
    }
}
