//! Device sweep: decode/prefill throughput across every execution
//! backend, plus power and memory for the NPU runtime, on the three
//! Snapdragon generations (Figures 11, 12, 13 and 16 in one view).
//!
//! Every engine is driven through the `Backend` trait — the same
//! `&[Box<dyn Backend>]` the Figure 13 row-generators consume — so adding
//! a backend adds a row here without touching this loop. Models that
//! exceed one 32-bit session run through the paper's Section 8
//! multi-session sharding automatically (Qwen-3B on the 8 Gen 2 decodes
//! across 2 sessions; Qwen-7B runs sharded on every generation) and are
//! tagged with their session count.
//!
//! The final section runs decode with overlap-aware async dispatch ON and
//! OFF (paper Section 7.2.2), then compares the fully resident placement
//! against the weight-streaming hot/cold hierarchy (DDR staging + DMA
//! prefetch lane): it writes the machine-readable `BENCH_decode.json`
//! artifact and **fails the process** if any overlapped point regresses
//! above its serial baseline, if any streamed point drops below 90% of
//! its resident baseline, or if the larger-than-cap rescue configuration
//! stops running — CI runs this example on every push, so the sharded
//! execution path, the overlap win and the streaming placement are
//! exercised — not just compiled — continuously.
//!
//! Run with: `cargo run --release --example device_sweep`

use benchutil::json::Json;
use npuscale::backend::{all_backends, decode_sweep, SweepOutcome};
use npuscale::experiments::{decode_overlap_rows, decode_stream_rows};
use npuscale::memory::measure_overhead;
use npuscale_repro::prelude::*;

fn main() {
    for device in DeviceProfile::all() {
        println!(
            "\n=== {} / {} (Hexagon {:?}) ===",
            device.name, device.soc, device.arch
        );
        let pm = PowerModel::new(device.clone());
        let backends = all_backends(&device);
        for model in [
            ModelId::Llama1B,
            ModelId::Qwen1_5B,
            ModelId::Qwen3B,
            ModelId::Qwen7B,
        ] {
            for b in &backends {
                print!("{:<6} {:<18}", model.label(), b.name());
                let sweep = decode_sweep(b.as_ref(), model, 1024, &[1, 8, 16]);
                let shard_tag = sweep.shard_tag();
                let points = match sweep {
                    SweepOutcome::CannotRun(reason) => {
                        println!(" cannot run: {reason}");
                        continue;
                    }
                    SweepOutcome::Ran(points) => points,
                };
                let tps = |p: &Option<npuscale::DecodePoint>| {
                    p.as_ref()
                        .map(|p| format!("{:>6.1}", p.tokens_per_sec))
                        .unwrap_or_else(|| format!("{:>6}", "-"))
                };
                print!(
                    " decode b1/b8/b16: {}/{}/{}",
                    tps(&points[0]),
                    tps(&points[1]),
                    tps(&points[2])
                );
                // Power and dmabuf accounting describe the NPU runtime
                // only; analytic baselines report no engine activity.
                if let Some(p8) = &points[1] {
                    if p8.has_engine_activity() {
                        let power = pm.measure(p8);
                        let mem = measure_overhead(model, p8, 4096, b.name());
                        print!(
                            " | {:>4.2} W @ b8 | dmabuf {:>5.0} MiB",
                            power.power_w, mem.dmabuf_mib
                        );
                    }
                }
                if let Some(tag) = shard_tag {
                    // The Section 8 workaround in action: weights split
                    // across several 32-bit sessions. KV growth can push
                    // larger batches into more sessions, so a row may
                    // span counts (e.g. "x3-4").
                    print!(" | sharded {tag} sessions");
                }
                println!();
            }
        }
        // Prefill at a few prompt lengths (Figure 13 upper panels).
        for model in [ModelId::Qwen1_5B] {
            for b in &backends {
                print!("{:<6} {:<18} prefill", model.label(), b.name());
                for prompt in [256usize, 1024, 2048] {
                    if let Ok(p) = b.prefill(model, prompt) {
                        print!("  {}t: {:>6.0} tok/s", prompt, p.tokens_per_sec);
                    }
                }
                println!();
            }
        }
    }
    println!(
        "\nNote: rows tagged \"sharded xN sessions\" execute the paper's\n\
         Section 8 multi-session workaround: layer weights split across N\n\
         32-bit VA spaces, with a CPU-side session switch charged at every\n\
         shard boundary of each decode step."
    );
    overlap_section();
}

/// Serial vs. overlap-aware async dispatch (paper Section 7.2.2): prints
/// the comparison, writes `BENCH_decode.json`, and exits non-zero if any
/// overlapped point regresses above its serial baseline.
fn overlap_section() {
    println!("\n=== Async dispatch overlap (Section 7.2.2): serial vs overlapped ===");
    println!(
        "{:<6} {:<6} {:>5} {:>6} {:>12} {:>12} {:>8} {:>9}",
        "device", "model", "batch", "ctx", "serial t/s", "async t/s", "speedup", "sessions"
    );
    let rows = decode_overlap_rows();
    let mut regressed = false;
    let mut json_rows = Vec::new();
    for r in &rows {
        println!(
            "{:<6} {:<6} {:>5} {:>6} {:>12.1} {:>12.1} {:>7.2}x {:>9}",
            r.device,
            r.model,
            r.batch,
            r.ctx_len,
            r.serial_tps,
            r.overlapped_tps,
            r.speedup,
            r.sessions
        );
        // The critical path can never exceed the serial stage sum; a
        // violation means the timeline scheduler regressed.
        if r.overlapped_tps < r.serial_tps * (1.0 - 1e-9) {
            eprintln!(
                "REGRESSION: {}/{} b{}: overlapped {} tok/s below serial {} tok/s",
                r.device, r.model, r.batch, r.overlapped_tps, r.serial_tps
            );
            regressed = true;
        }
        json_rows.push(Json::obj([
            ("device", Json::str(r.device.clone())),
            ("model", Json::str(r.model.clone())),
            ("batch", Json::from(r.batch)),
            ("ctx_len", Json::from(r.ctx_len)),
            ("serial_tps", Json::Num(r.serial_tps)),
            ("overlapped_tps", Json::Num(r.overlapped_tps)),
            ("speedup", Json::Num(r.speedup)),
            ("sessions", Json::from(r.sessions)),
        ]));
    }
    let (stream_json, stream_regressed) = streaming_section();
    let stream_rows = stream_json.len();
    let artifact = Json::obj([
        ("bench", Json::str("decode_overlap")),
        ("unit", Json::str("tokens_per_sec")),
        (
            "description",
            Json::str(
                "Decode throughput, serial vs overlap-aware async dispatch \
                 (paper Sec 7.2.2) and resident vs weight-streamed placement \
                 (hot/cold hierarchy, DMA prefetch lane), per device profile; \
                 regenerated by `cargo run --release --example device_sweep`",
            ),
        ),
        ("rows", Json::Arr(json_rows)),
        ("streaming_rows", Json::Arr(stream_json)),
    ]);
    benchutil::json::write_file("BENCH_decode.json", &artifact).expect("writing BENCH_decode.json");
    println!(
        "\nWrote BENCH_decode.json ({} overlap rows, {} streaming rows).",
        rows.len(),
        stream_rows
    );
    if regressed {
        eprintln!("overlapped decode regressed above the serial baseline");
        std::process::exit(1);
    }
    if stream_regressed {
        eprintln!("weight streaming regressed against its resident baseline");
        std::process::exit(1);
    }
}

/// Resident vs. weight-streamed decode (hot/cold weight hierarchy):
/// prints the comparison and returns the JSON rows plus whether any gate
/// tripped — streamed throughput below 90% of resident, sessions not
/// saved, or the larger-than-cap rescue configuration failing to run.
fn streaming_section() -> (Vec<Json>, bool) {
    println!("\n=== Weight streaming (hot/cold hierarchy): resident vs streamed ===");
    println!(
        "{:<6} {:<6} {:>5} {:>6} {:>13} {:>13} {:>7} {:>7} {:>6}",
        "device",
        "model",
        "batch",
        "ctx",
        "resident t/s",
        "streamed t/s",
        "res.s",
        "str.s",
        "ratio"
    );
    let rows = decode_stream_rows();
    let mut regressed = false;
    let mut rescue_ran = false;
    let mut json_rows = Vec::new();
    for r in &rows {
        let resident_tps = if r.resident_runs {
            format!("{:>13.1}", r.resident_tps)
        } else {
            format!("{:>13}", "cannot run")
        };
        println!(
            "{:<6} {:<6} {:>5} {:>6} {resident_tps} {:>13.1} {:>7} {:>7} {:>6.3}",
            r.device,
            r.model,
            r.batch,
            r.ctx_len,
            r.streamed_tps,
            r.resident_sessions,
            r.streamed_sessions,
            r.throughput_ratio
        );
        if r.resident_runs {
            // The DMA prefetch lane must hide all but <=10% of the
            // cold-layer fetches, while freeing at least one session.
            if r.throughput_ratio < 0.9 {
                eprintln!(
                    "REGRESSION: {}/{} b{}: streamed keeps only {:.3} of resident",
                    r.device, r.model, r.batch, r.throughput_ratio
                );
                regressed = true;
            }
            if r.sessions_saved == 0 {
                eprintln!(
                    "REGRESSION: {}/{} b{}: streaming saved no sessions",
                    r.device, r.model, r.batch
                );
                regressed = true;
            }
        } else {
            // Resident cannot run here: streaming running at all IS the
            // result (a previously undeployable configuration).
            rescue_ran = true;
        }
        json_rows.push(Json::obj([
            ("device", Json::str(r.device.clone())),
            ("model", Json::str(r.model.clone())),
            ("batch", Json::from(r.batch)),
            ("ctx_len", Json::from(r.ctx_len)),
            ("resident_runs", Json::Bool(r.resident_runs)),
            ("resident_tps", Json::Num(r.resident_tps)),
            ("resident_sessions", Json::from(r.resident_sessions)),
            ("streamed_tps", Json::Num(r.streamed_tps)),
            ("streamed_sessions", Json::from(r.streamed_sessions)),
            ("sessions_saved", Json::from(r.sessions_saved)),
            ("throughput_ratio", Json::Num(r.throughput_ratio)),
        ]));
    }
    if !rescue_ran {
        eprintln!("REGRESSION: no larger-than-cap configuration ran streamed");
        regressed = true;
    }
    (json_rows, regressed)
}
