//! Device sweep: decode/prefill throughput across every execution
//! backend, plus power and memory for the NPU runtime, on the three
//! Snapdragon generations (Figures 11, 12, 13 and 16 in one view).
//!
//! Every engine is driven through the `Backend` trait — the same
//! `&[Box<dyn Backend>]` the Figure 13 row-generators consume — so adding
//! a backend adds a row here without touching this loop. Models that
//! exceed one 32-bit session run through the paper's Section 8
//! multi-session sharding automatically (Qwen-3B on the 8 Gen 2 decodes
//! across 2 sessions; Qwen-7B runs sharded on every generation) and are
//! tagged with their session count.
//!
//! Run with: `cargo run --release --example device_sweep`
//!
//! CI runs this example on every push, so the sharded execution path is
//! exercised — not just compiled — continuously.

use npuscale::backend::{all_backends, decode_sweep, SweepOutcome};
use npuscale::memory::measure_overhead;
use npuscale_repro::prelude::*;

fn main() {
    for device in DeviceProfile::all() {
        println!(
            "\n=== {} / {} (Hexagon {:?}) ===",
            device.name, device.soc, device.arch
        );
        let pm = PowerModel::new(device.clone());
        let backends = all_backends(&device);
        for model in [
            ModelId::Llama1B,
            ModelId::Qwen1_5B,
            ModelId::Qwen3B,
            ModelId::Qwen7B,
        ] {
            for b in &backends {
                print!("{:<6} {:<18}", model.label(), b.name());
                let sweep = decode_sweep(b.as_ref(), model, 1024, &[1, 8, 16]);
                let shard_tag = sweep.shard_tag();
                let points = match sweep {
                    SweepOutcome::CannotRun(reason) => {
                        println!(" cannot run: {reason}");
                        continue;
                    }
                    SweepOutcome::Ran(points) => points,
                };
                let tps = |p: &Option<npuscale::DecodePoint>| {
                    p.as_ref()
                        .map(|p| format!("{:>6.1}", p.tokens_per_sec))
                        .unwrap_or_else(|| format!("{:>6}", "-"))
                };
                print!(
                    " decode b1/b8/b16: {}/{}/{}",
                    tps(&points[0]),
                    tps(&points[1]),
                    tps(&points[2])
                );
                // Power and dmabuf accounting describe the NPU runtime
                // only; analytic baselines report no engine activity.
                if let Some(p8) = &points[1] {
                    if p8.has_engine_activity() {
                        let power = pm.measure(p8);
                        let mem = measure_overhead(model, p8, 4096, b.name());
                        print!(
                            " | {:>4.2} W @ b8 | dmabuf {:>5.0} MiB",
                            power.power_w, mem.dmabuf_mib
                        );
                    }
                }
                if let Some(tag) = shard_tag {
                    // The Section 8 workaround in action: weights split
                    // across several 32-bit sessions. KV growth can push
                    // larger batches into more sessions, so a row may
                    // span counts (e.g. "x3-4").
                    print!(" | sharded {tag} sessions");
                }
                println!();
            }
        }
        // Prefill at a few prompt lengths (Figure 13 upper panels).
        for model in [ModelId::Qwen1_5B] {
            for b in &backends {
                print!("{:<6} {:<18} prefill", model.label(), b.name());
                for prompt in [256usize, 1024, 2048] {
                    if let Ok(p) = b.prefill(model, prompt) {
                        print!("  {}t: {:>6.0} tok/s", prompt, p.tokens_per_sec);
                    }
                }
                println!();
            }
        }
    }
    println!(
        "\nNote: rows tagged \"sharded xN sessions\" execute the paper's\n\
         Section 8 multi-session workaround: layer weights split across N\n\
         32-bit VA spaces, with a CPU-side session switch charged at every\n\
         shard boundary of each decode step."
    );
}
