//! Device sweep: decode/prefill throughput, power, and memory across the
//! three Snapdragon generations (Figures 11, 12, 16 in one view).
//!
//! Run with: `cargo run --release --example device_sweep`

use npuscale::memory::measure_overhead;
use npuscale_repro::prelude::*;

fn main() {
    for device in DeviceProfile::all() {
        println!(
            "\n=== {} / {} (Hexagon {:?}) ===",
            device.name, device.soc, device.arch
        );
        let pm = PowerModel::new(device.clone());
        for model in [ModelId::Llama1B, ModelId::Qwen1_5B, ModelId::Qwen3B] {
            print!("{:<6}", model.label());
            match measure_decode(&device, model, 1, 1024) {
                Ok(p1) => {
                    let p8 = measure_decode(&device, model, 8, 1024).unwrap();
                    let p16 = measure_decode(&device, model, 16, 1024).unwrap();
                    let power = pm.measure(&p8);
                    let mem = measure_overhead(model, &p8, 4096);
                    println!(
                        " decode b1/b8/b16: {:>5.1}/{:>5.1}/{:>6.1} tok/s | {:>4.2} W @ b8 | dmabuf {:>5.0} MiB",
                        p1.tokens_per_sec,
                        p8.tokens_per_sec,
                        p16.tokens_per_sec,
                        power.power_w,
                        mem.dmabuf_mib
                    );
                }
                Err(e) => println!(" cannot run: {e}"),
            }
        }
        // Prefill at a few prompt lengths (Figure 13 upper panels).
        for model in [ModelId::Qwen1_5B] {
            print!("{:<6} prefill", model.label());
            for prompt in [256usize, 1024, 2048] {
                if let Ok(p) = measure_prefill(&device, model, prompt) {
                    print!("  {}t: {:>6.0} tok/s", prompt, p.tokens_per_sec);
                }
            }
            println!();
        }
    }
    println!(
        "\nNote: Qwen3B fails on the 8G2 with a session VA-space error — the\n\
         exact gate the paper reports for Snapdragon 8 Gen 2 (Section 7.2.1)."
    );
}
