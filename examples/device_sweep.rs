//! Device sweep: decode/prefill throughput across every execution
//! backend, plus power and memory for the NPU runtime, on the three
//! Snapdragon generations (Figures 11, 12, 13 and 16 in one view).
//!
//! Every engine is driven through the `Backend` trait — the same
//! `&[Box<dyn Backend>]` the Figure 13 row-generators consume — so adding
//! a backend adds a row here without touching this loop.
//!
//! Run with: `cargo run --release --example device_sweep`

use npuscale::backend::{all_backends, decode_sweep, SweepOutcome};
use npuscale::memory::measure_overhead;
use npuscale_repro::prelude::*;

fn main() {
    for device in DeviceProfile::all() {
        println!(
            "\n=== {} / {} (Hexagon {:?}) ===",
            device.name, device.soc, device.arch
        );
        let pm = PowerModel::new(device.clone());
        let backends = all_backends(&device);
        for model in [ModelId::Llama1B, ModelId::Qwen1_5B, ModelId::Qwen3B] {
            for b in &backends {
                print!("{:<6} {:<18}", model.label(), b.name());
                let points = match decode_sweep(b.as_ref(), model, 1024, &[1, 8, 16]) {
                    // The fits probe turns the VA gate into a shard count
                    // instead of a bare failure.
                    SweepOutcome::NeedsSharding(sessions) => {
                        println!(" needs {sessions} sessions (32-bit VA gate)");
                        continue;
                    }
                    SweepOutcome::CannotRun(reason) => {
                        println!(" cannot run: {reason}");
                        continue;
                    }
                    SweepOutcome::Ran(points) => points,
                };
                let tps = |p: &Option<npuscale::DecodePoint>| {
                    p.as_ref()
                        .map(|p| format!("{:>6.1}", p.tokens_per_sec))
                        .unwrap_or_else(|| format!("{:>6}", "-"))
                };
                print!(
                    " decode b1/b8/b16: {}/{}/{}",
                    tps(&points[0]),
                    tps(&points[1]),
                    tps(&points[2])
                );
                // Power and dmabuf accounting describe the NPU runtime
                // only; analytic baselines report no engine activity.
                if let Some(p8) = &points[1] {
                    if p8.has_engine_activity() {
                        let power = pm.measure(p8);
                        let mem = measure_overhead(model, p8, 4096, b.name());
                        print!(
                            " | {:>4.2} W @ b8 | dmabuf {:>5.0} MiB",
                            power.power_w, mem.dmabuf_mib
                        );
                    }
                }
                println!();
            }
        }
        // Prefill at a few prompt lengths (Figure 13 upper panels).
        for model in [ModelId::Qwen1_5B] {
            for b in &backends {
                print!("{:<6} {:<18} prefill", model.label(), b.name());
                for prompt in [256usize, 1024, 2048] {
                    if let Ok(p) = b.prefill(model, prompt) {
                        print!("  {}t: {:>6.0} tok/s", prompt, p.tokens_per_sec);
                    }
                }
                println!();
            }
        }
    }
    println!(
        "\nNote: Qwen3B on the 8G2 reports the session count the paper's\n\
         Section 8 multi-session workaround would need — the exact VA gate\n\
         reported for Snapdragon 8 Gen 2 (Section 7.2.1)."
    );
}
