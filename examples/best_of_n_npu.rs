//! End-to-end Best-of-N on the simulated NPU, plus the calibrated scaling
//! curve it plugs into.
//!
//! Part 1 runs the *real machinery*: a math task is prompted into the tiny
//! functional model, N samples decode as one batch through the simulated
//! HMX/HVX pipeline (tile-quantized weights, LUT dequantization, FP16
//! FlashAttention with the vgather exp LUT, CPU lm_head), answers are
//! extracted and verified. Part 2 shows the accuracy side at paper scale
//! with the calibrated policy (Figure 5).
//!
//! Run with: `cargo run --release --example best_of_n_npu`

use npuscale_repro::prelude::*;
use ttscale::best_of_n;
use ttscale::llm_policy::llm_best_of_n;

fn main() {
    // --- Part 1: the real pipeline on the simulated NPU. ---
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 3).unwrap();
    let task = TaskGenerator::new(DatasetKind::Gsm8kLike, 5).next_task();
    println!("task: {}", task.statement);
    println!("truth: {}\n", task.answer);

    let n = 8;
    let out = llm_best_of_n(&mut ctx, &model, &task, n, 10, 17).unwrap();
    println!("best-of-{n} on the simulated NPU:");
    for (i, (c, a)) in out.completions.iter().zip(&out.answers).enumerate() {
        println!("  sample {i}: {c:?} -> answer {a:?}");
    }
    println!(
        "\nany sample correct: {} (untrained tiny model; the machinery is the point)",
        out.any_correct
    );
    println!(
        "decode throughput: {:.1} tok/s simulated across the batch of {n}",
        out.decode_tokens_per_sec
    );
    println!(
        "total simulated cost: {:.1} ms NPU + {:.1} ms CPU",
        out.cost.npu_secs() * 1e3,
        out.cost.cpu_secs * 1e3
    );

    // --- Part 2: the calibrated accuracy curve (Figure 5). ---
    println!("\ncalibrated Best-of-N scaling, MATH500 profile (paper Figure 5):");
    let tasks = TaskGenerator::new(DatasetKind::Math500Like, 11).take(400);
    let orm = SimOrm::default();
    for model_id in [ModelId::Llama1B, ModelId::Qwen1_5B] {
        let policy = CalibratedPolicy::new(model_id, DatasetKind::Math500Like);
        print!("  {:<22}", ModelConfig::for_id(model_id).name);
        for budget in [1usize, 2, 4, 8, 16] {
            let acc = best_of_n::accuracy_over_tasks(&policy, &orm, &tasks, budget, 9);
            print!(" N={budget}:{acc:>5.1}%");
        }
        println!();
    }
}
