//! The paper's headline result: small models + test-time scaling beat
//! larger models on the accuracy-cost Pareto frontier (Figure 10).
//!
//! Sweeps Best-of-N and step-level beam search budgets for the on-device
//! models, measures per-token decode latency through the full simulated
//! pipeline, and prints which TTS points dominate which baseline points.
//!
//! Run with: `cargo run --release --example scaling_pareto`

use npuscale::pareto::{dominates, pareto_panel, Method};
use npuscale_repro::prelude::*;

fn main() {
    let device = DeviceProfile::v75();
    let dataset = DatasetKind::Math500Like;
    println!(
        "accuracy vs per-token decode latency - {} on {} (simulated)",
        dataset.label(),
        device.name
    );

    for method in [Method::BestOfN, Method::BeamSearch] {
        println!("\n=== {} ===", method.label());
        let points = pareto_panel(&device, dataset, method, 42);
        println!(
            "{:<10} {:>7} {:>10} {:>14}",
            "series", "budget", "accuracy", "latency/token"
        );
        for p in &points {
            println!(
                "{:<10} {:>7} {:>9.1}% {:>11.0} ms",
                p.series,
                p.budget,
                p.accuracy_pct,
                p.per_token_latency_s * 1e3
            );
        }

        // Who dominates whom: TTS points vs base points.
        let bases: Vec<_> = points
            .iter()
            .filter(|p| p.series.ends_with("base"))
            .collect();
        let tts: Vec<_> = points
            .iter()
            .filter(|p| p.series.ends_with("TTS"))
            .collect();
        println!("\ndominance (TTS point beats base point on both axes):");
        let mut any = false;
        for b in &bases {
            for t in &tts {
                if dominates(t, b) {
                    println!(
                        "  {}@N={} ({:.1}%, {:.0} ms) dominates {} ({:.1}%, {:.0} ms)",
                        t.series,
                        t.budget,
                        t.accuracy_pct,
                        t.per_token_latency_s * 1e3,
                        b.series,
                        b.accuracy_pct,
                        b.per_token_latency_s * 1e3
                    );
                    any = true;
                }
            }
        }
        if !any {
            println!("  (no strict dominance at these budgets)");
        }
    }
}
