//! Speculative decoding through the real stack (paper Section 9's
//! generate-then-verify extension): functional losslessness gate plus the
//! paper-scale cost rows behind `BENCH_spec.json`.
//!
//! Part 1 runs the tiny functional models bit-faithfully: plain greedy
//! decoding, single-model speculation (bigram and oracle drafts), and the
//! real two-model draft/target pipeline — every variant must produce the
//! *identical* token stream, or the process exits non-zero (speculation
//! may only accelerate, never alter).
//!
//! Part 2 prices the Qwen-1.5B target + Qwen-0.5B draft pair on the three
//! Snapdragon generations in cost mode: plain decode vs spec-serial vs
//! spec-overlapped (the draft round scheduled behind the verify kernels
//! on the DRAFT lane), then the acceptance-adaptive draft-length
//! controller against a fixed `k = 6` on a cold trace. It writes the
//! machine-readable `BENCH_spec.json` artifact and **fails the process**
//! if spec-overlapped stops beating plain decode on any generation at the
//! pinned acceptance trace, or if the adaptive controller ever loses to
//! the fixed policy on the cold trace — CI runs this example on every
//! push, so the speculative path is exercised, not just compiled.
//!
//! Run with: `cargo run --release --example spec_decode`

use benchutil::json::Json;
use npuscale::experiments::{
    spec_adaptive_rows, spec_decode_rows, SPEC_ACCEPTANCE, SPEC_CTX_LEN, SPEC_LOW_ACCEPTANCE,
    SPEC_ROUNDS,
};
use npuscale_repro::prelude::*;
use ttscale::spec_decode::{
    greedy_generate, speculative_decode_pipeline, speculative_generate, BigramDraft,
    DraftLenController, DraftModel,
};

struct OracleDraft {
    stream: Vec<u32>,
    prompt_len: usize,
}

impl DraftModel for OracleDraft {
    // Index by context, not an internal counter: each fully accepted round
    // commits draft_len + 1 tokens (the bonus token comes from the final
    // verify position), so a per-call counter would drift one token behind
    // the committed stream every round.
    fn propose(&mut self, context: &[u32]) -> u32 {
        let pos = context.len() - self.prompt_len;
        self.stream[pos.min(self.stream.len() - 1)]
    }
}

fn main() {
    let lossless = functional_section();
    let gated = cost_section();
    if !lossless {
        eprintln!("speculative output diverged from plain greedy decoding");
        std::process::exit(1);
    }
    if gated {
        std::process::exit(1);
    }
}

/// Bit-identity of every speculative variant against plain greedy
/// decoding on the tiny functional models. Returns `false` on mismatch
/// instead of panicking so the cost section still prints its rows.
fn functional_section() -> bool {
    println!("=== Functional losslessness (tiny models, bit-faithful) ===");
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let target = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
    let prompt = vec![1u32, 50, 60, 70, 80];
    let new_tokens = 16;
    let mut ok = true;

    // Reference: plain greedy decoding of the target.
    let (greedy, greedy_cost) = greedy_generate(&mut ctx, &target, &prompt, new_tokens).unwrap();
    println!(
        "greedy:        {} tokens in {:.2} ms simulated ({} target steps)",
        greedy.len(),
        greedy_cost.wall_secs() * 1e3,
        new_tokens
    );

    // A weak learned draft (bigram table, improves as tokens are accepted).
    let mut bigram = BigramDraft::new(4);
    let weak =
        speculative_generate(&mut ctx, &target, &mut bigram, &prompt, new_tokens, 3).unwrap();
    ok &= weak.tokens == greedy;
    println!(
        "bigram draft:  {} target steps, {:.2} tokens accepted/step, lossless: {}",
        weak.target_steps,
        weak.mean_accepted,
        weak.tokens == greedy
    );

    // An oracle draft: every proposal matches the target's greedy choice —
    // the upper bound of drafting quality.
    let mut oracle = OracleDraft {
        stream: greedy.clone(),
        prompt_len: prompt.len(),
    };
    let perfect =
        speculative_generate(&mut ctx, &target, &mut oracle, &prompt, new_tokens, 3).unwrap();
    ok &= perfect.tokens == greedy;
    println!(
        "oracle draft:  {} target steps ({:.2}x fewer), lossless: {}",
        perfect.target_steps,
        new_tokens as f64 / perfect.target_steps as f64,
        perfect.tokens == greedy
    );

    // The real two-model pipeline: an independent draft model (same vocab,
    // different weights) proposes chunks autoregressively, KV co-resident
    // with the target's, adaptive draft length.
    let draft = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 7).unwrap();
    let mut ctrl = DraftLenController::adaptive(3, 1, 4);
    let pipe =
        speculative_decode_pipeline(&mut ctx, &target, &draft, &prompt, new_tokens, &mut ctrl)
            .unwrap();
    ok &= pipe.tokens == greedy;
    println!(
        "two-model:     {} verify rounds, {:.2} committed/round, overlap {:.2}x, lossless: {}",
        pipe.target_steps,
        pipe.mean_accepted,
        pipe.serial_secs / pipe.overlapped_secs,
        pipe.tokens == greedy
    );
    ok
}

/// Paper-scale cost rows: prints both tables, writes `BENCH_spec.json`,
/// and returns whether any CI gate tripped.
fn cost_section() -> bool {
    println!(
        "\n=== Speculative decode (Section 9): plain vs spec-serial vs spec-overlapped ===\n\
         target+draft co-resident, ctx {SPEC_CTX_LEN}, {SPEC_ROUNDS} verify rounds, \
         acceptance trace alpha={SPEC_ACCEPTANCE}"
    );
    println!(
        "{:<6} {:<6} {:<6} {:>2} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "device",
        "target",
        "draft",
        "k",
        "acc/round",
        "plain t/s",
        "serial t/s",
        "ovl t/s",
        "speedup",
        "ovlgain",
        "draft%"
    );
    let rows = spec_decode_rows();
    let mut tripped = false;
    let mut json_rows = Vec::new();
    for r in &rows {
        println!(
            "{:<6} {:<6} {:<6} {:>2} {:>9.2} {:>10.1} {:>10.1} {:>10.1} {:>7.2}x {:>7.2}x {:>7.0}%",
            r.device,
            r.target,
            r.draft,
            r.draft_len,
            r.mean_accepted,
            r.plain_tps,
            r.spec_serial_tps,
            r.spec_overlapped_tps,
            r.speedup,
            r.overlap_gain,
            r.draft_step_frac * 100.0
        );
        // Gate 1: overlapped speculation must beat plain decode in
        // accepted-tokens/sec on every generation (measured 1.21-1.31x;
        // the floor is pinned below that to catch real regressions, not
        // noise).
        if r.speedup < 1.1 {
            eprintln!(
                "REGRESSION: {}: spec-overlapped {:.1} acc-tok/s vs plain {:.1} tok/s ({:.2}x < 1.1x)",
                r.device, r.spec_overlapped_tps, r.plain_tps, r.speedup
            );
            tripped = true;
        }
        json_rows.push(Json::obj([
            ("device", Json::str(r.device.clone())),
            ("target", Json::str(r.target.clone())),
            ("draft", Json::str(r.draft.clone())),
            ("ctx_len", Json::from(r.ctx_len)),
            ("draft_len", Json::from(r.draft_len)),
            ("acceptance", Json::Num(r.acceptance)),
            ("mean_accepted", Json::Num(r.mean_accepted)),
            ("draft_step_frac", Json::Num(r.draft_step_frac)),
            ("plain_tps", Json::Num(r.plain_tps)),
            ("plain_overlapped_tps", Json::Num(r.plain_overlapped_tps)),
            ("spec_serial_tps", Json::Num(r.spec_serial_tps)),
            ("spec_overlapped_tps", Json::Num(r.spec_overlapped_tps)),
            ("speedup", Json::Num(r.speedup)),
            ("overlap_gain", Json::Num(r.overlap_gain)),
        ]));
    }
    if rows.len() < 3 {
        eprintln!(
            "REGRESSION: only {} of 3 generations produced a row",
            rows.len()
        );
        tripped = true;
    }

    println!(
        "\n=== Adaptive vs fixed draft length on a cold trace (alpha={SPEC_LOW_ACCEPTANCE}) ==="
    );
    println!(
        "{:<6} {:>7} {:>11} {:>8} {:>13} {:>10}",
        "device", "fixed k", "fixed t/s", "mean k", "adaptive t/s", "advantage"
    );
    let adaptive = spec_adaptive_rows();
    let mut adaptive_json = Vec::new();
    for r in &adaptive {
        println!(
            "{:<6} {:>7} {:>11.1} {:>8.2} {:>13.1} {:>9.2}x",
            r.device, r.fixed_k, r.fixed_tps, r.adaptive_mean_k, r.adaptive_tps, r.advantage
        );
        // Gate 2: on the cold trace the adaptive controller must beat the
        // fixed policy (measured ~5.5x; floor pinned well below).
        if r.advantage < 1.5 {
            eprintln!(
                "REGRESSION: {}: adaptive {:.1} vs fixed {:.1} acc-tok/s ({:.2}x < 1.5x)",
                r.device, r.adaptive_tps, r.fixed_tps, r.advantage
            );
            tripped = true;
        }
        adaptive_json.push(Json::obj([
            ("device", Json::str(r.device.clone())),
            ("acceptance", Json::Num(r.acceptance)),
            ("fixed_k", Json::from(r.fixed_k)),
            ("fixed_tps", Json::Num(r.fixed_tps)),
            ("adaptive_mean_k", Json::Num(r.adaptive_mean_k)),
            ("adaptive_tps", Json::Num(r.adaptive_tps)),
            ("advantage", Json::Num(r.advantage)),
        ]));
    }
    if adaptive.len() < 3 {
        eprintln!(
            "REGRESSION: only {} of 3 adaptive comparisons produced a row",
            adaptive.len()
        );
        tripped = true;
    }

    let artifact = Json::obj([
        ("bench", Json::str("spec_decode")),
        ("unit", Json::str("accepted_tokens_per_sec")),
        (
            "description",
            Json::str(
                "Speculative decoding through the real stack (paper Sec 9): \
                 plain decode vs spec-serial vs spec-overlapped (draft round \
                 scheduled behind the verify kernels on the DRAFT lane) per \
                 device generation, plus adaptive-vs-fixed draft length on a \
                 cold acceptance trace; regenerated by \
                 `cargo run --release --example spec_decode`",
            ),
        ),
        ("rows", Json::Arr(json_rows)),
        ("adaptive_rows", Json::Arr(adaptive_json)),
    ]);
    benchutil::json::write_file("BENCH_spec.json", &artifact).expect("writing BENCH_spec.json");
    println!(
        "\nWrote BENCH_spec.json ({} spec rows, {} adaptive rows).",
        rows.len(),
        adaptive.len()
    );
    tripped
}
