//! Speculative decoding on the simulated NPU (paper Section 9's
//! generate-then-verify extension).
//!
//! Verifying a drafted chunk is one batched forward over the chunk rows —
//! the same idle HMX tiles that Best-of-N samples use. With a good draft
//! the target model advances several tokens per step; with a bad draft it
//! degenerates gracefully to greedy decoding, never changing the output.
//!
//! Run with: `cargo run --release --example spec_decode`

use npuscale_repro::prelude::*;
use ttscale::spec_decode::{greedy_generate, speculative_generate, BigramDraft, DraftModel};

struct OracleDraft {
    stream: Vec<u32>,
    prompt_len: usize,
}

impl DraftModel for OracleDraft {
    // Index by context, not an internal counter: each fully accepted round
    // commits draft_len + 1 tokens (the bonus token comes from the final
    // verify position), so a per-call counter would drift one token behind
    // the committed stream every round.
    fn propose(&mut self, context: &[u32]) -> u32 {
        let pos = context.len() - self.prompt_len;
        self.stream[pos.min(self.stream.len() - 1)]
    }
}

fn main() {
    let mut ctx = NpuContext::new(DeviceProfile::v75(), ExecMode::Functional);
    let model = Model::new(&mut ctx, ModelId::Tiny, DequantVariant::CoalescedLut, 21).unwrap();
    let prompt = vec![1u32, 50, 60, 70, 80];
    let new_tokens = 16;

    // Reference: plain greedy decoding.
    let (greedy, greedy_cost) = greedy_generate(&mut ctx, &model, &prompt, new_tokens).unwrap();
    println!(
        "greedy:        {} tokens in {:.2} ms simulated ({} target steps)",
        greedy.len(),
        greedy_cost.wall_secs() * 1e3,
        new_tokens
    );

    // A weak learned draft (bigram table, improves as tokens are accepted).
    let mut bigram = BigramDraft::new(4);
    let weak = speculative_generate(&mut ctx, &model, &mut bigram, &prompt, new_tokens, 3).unwrap();
    assert_eq!(weak.tokens, greedy, "speculation must be lossless");
    println!(
        "bigram draft:  {} target steps, {:.2} tokens accepted/step, {:.2} ms simulated",
        weak.target_steps,
        weak.mean_accepted,
        weak.cost.wall_secs() * 1e3
    );

    // An oracle draft: every proposal matches the target's greedy choice —
    // the upper bound of drafting quality.
    let mut oracle = OracleDraft {
        stream: greedy.clone(),
        prompt_len: prompt.len(),
    };
    let perfect =
        speculative_generate(&mut ctx, &model, &mut oracle, &prompt, new_tokens, 3).unwrap();
    assert_eq!(perfect.tokens, greedy);
    println!(
        "oracle draft:  {} target steps, {:.2} tokens accepted/step, {:.2} ms simulated",
        perfect.target_steps,
        perfect.mean_accepted,
        perfect.cost.wall_secs() * 1e3
    );
    println!(
        "\nspeedup over greedy (oracle): {:.2}x fewer target steps — the\n\
         verification rows ride the same free HMX tiles as test-time scaling.",
        new_tokens as f64 / perfect.target_steps as f64
    );
}
